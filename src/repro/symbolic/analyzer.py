"""ISAAC-style symbolic small-signal analysis.

Generates exact symbolic transfer functions ``V(out)/V(in)`` of linearized
analog circuits: every resistor becomes a conductance symbol, every
capacitor a capacitance symbol, every MOSFET its small-signal model
(gm, gds, gmb and Meyer capacitances) evaluated at a numeric DC operating
point that also supplies the nominal values used for term ranking.

DC-only voltage sources (supplies and bias generators) are AC grounds and
their nets are merged away before analysis — the standard trick that keeps
the symbolic matrix near the size of the signal path.

The transfer function is obtained from Cramer's rule; determinants of the
sparse symbolic MNA matrix are computed by recursive Laplace expansion
along the sparsest column with memoization on (row-set, column-set)
bitmasks.  With AC-ground collapsing, opamp-sized circuits (the "741
complexity" the tutorial cites for ISAAC) stay tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.dcop import OperatingPoint, dc_operating_point
from repro.analysis.mna import mos_capacitances
from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuits.netlist import GROUND, Circuit, NetlistError
from repro.symbolic.expr import RationalFunction, SignedSum, SPoly

_MIN_SYMBOL_VALUE = 1e-18


class SymbolicError(NetlistError):
    """Raised when a circuit cannot be analyzed symbolically."""


@dataclass
class _Entry:
    row: int
    col: int
    poly: SPoly


class SymbolicAnalyzer:
    """Builds symbolic MNA matrices and extracts transfer functions."""

    def __init__(self, circuit: Circuit, op: OperatingPoint | None = None,
                 input_source: str | None = None):
        self.circuit = circuit.flattened() if circuit.subckts else circuit
        if any(isinstance(d, Inductor) for d in self.circuit.devices):
            raise SymbolicError(
                "symbolic analysis does not support inductors; "
                "cell-level analog circuits are RC+transistor networks")
        needs_op = any(isinstance(d, Mosfet) for d in self.circuit.devices)
        self.op = op if op is not None else (
            dc_operating_point(self.circuit) if needs_op else None)
        self.input_source = input_source or self._default_input()
        self.values: dict[str, float] = {}
        self._rep = self._merge_ac_grounds()
        self._index_nodes()
        self._entries: list[_Entry] = []
        self._rhs_row: int | None = None
        self._build_matrix()

    # ------------------------------------------------------------------
    # circuit preparation
    # ------------------------------------------------------------------
    def _default_input(self) -> str | None:
        candidates = [
            d.name for d in self.circuit.devices
            if isinstance(d, (VoltageSource, CurrentSource)) and d.ac != 0.0
        ]
        if len(candidates) > 1:
            raise SymbolicError(
                f"multiple AC sources {candidates}; pass input_source=")
        return candidates[0] if candidates else None

    def _merge_ac_grounds(self) -> dict[str, str]:
        """Union-find merging nets tied together by DC-only V sources."""
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            # Ground always wins as representative.
            if rb == GROUND:
                ra, rb = rb, ra
            if ra == GROUND:
                parent[rb] = ra
            else:
                parent[rb] = ra

        for dev in self.circuit.devices:
            if isinstance(dev, VoltageSource) and dev.name != self.input_source:
                union(dev.nodes[0], dev.nodes[1])
        return {n: find(n) for n in self.circuit.nets()}

    def rep(self, net: str) -> str:
        return self._rep.get(net, net)

    def _index_nodes(self) -> None:
        nodes: list[str] = []
        for net in self.circuit.nets():
            r = self.rep(net)
            if r != GROUND and r not in nodes:
                nodes.append(r)
        self.node_names = nodes
        self.node_index = {n: i for i, n in enumerate(nodes)}
        # Branch rows: input V source (if any) and every VCVS.
        self.branch_names: list[str] = []
        for dev in self.circuit.devices:
            if isinstance(dev, VoltageSource) and dev.name == self.input_source:
                self.branch_names.append(dev.name)
            elif isinstance(dev, Vcvs):
                self.branch_names.append(dev.name)
        self.branch_index = {
            name: len(nodes) + k for k, name in enumerate(self.branch_names)
        }
        self.size = len(nodes) + len(self.branch_names)

    def node(self, net: str) -> int:
        r = self.rep(net)
        if r == GROUND:
            return -1
        return self.node_index[r]

    # ------------------------------------------------------------------
    # symbolic stamping
    # ------------------------------------------------------------------
    def _sym(self, name: str, value: float, s_power: int = 0) -> SPoly:
        self.values[name] = value if abs(value) > _MIN_SYMBOL_VALUE else 0.0
        return SPoly.symbol(name, s_power)

    def _add_entry(self, i: int, j: int, poly: SPoly) -> None:
        if i >= 0 and j >= 0 and not poly.is_zero:
            self._entries.append(_Entry(i, j, poly))

    def _stamp_admittance(self, a: int, b: int, poly: SPoly) -> None:
        self._add_entry(a, a, poly)
        self._add_entry(b, b, poly)
        self._add_entry(a, b, -poly)
        self._add_entry(b, a, -poly)

    def _stamp_transconductance(self, out_p: int, out_m: int,
                                in_p: int, in_m: int, poly: SPoly) -> None:
        self._add_entry(out_p, in_p, poly)
        self._add_entry(out_p, in_m, -poly)
        self._add_entry(out_m, in_p, -poly)
        self._add_entry(out_m, in_m, poly)

    def _build_matrix(self) -> None:
        for dev in self.circuit.devices:
            if isinstance(dev, Resistor):
                a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
                self._stamp_admittance(a, b, self._sym(
                    f"g_{dev.name}", 1.0 / dev.value))
            elif isinstance(dev, Capacitor):
                a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
                if dev.value > 0:
                    self._stamp_admittance(a, b, self._sym(
                        f"c_{dev.name}", dev.value, s_power=1))
            elif isinstance(dev, Vccs):
                op_, om, cp, cm = (self.node(n) for n in dev.nodes)
                self._stamp_transconductance(op_, om, cp, cm, self._sym(
                    f"gm_{dev.name}", dev.gm))
            elif isinstance(dev, Vcvs):
                self._stamp_vcvs(dev)
            elif isinstance(dev, Mosfet):
                self._stamp_mosfet(dev)
            elif isinstance(dev, VoltageSource):
                if dev.name == self.input_source:
                    self._stamp_input_vsource(dev)
                # DC-only sources were merged away.
            elif isinstance(dev, CurrentSource):
                pass  # AC-open; AC current inputs handled via rhs below
            else:
                raise SymbolicError(
                    f"device {dev.name!r} of type {type(dev).__name__} not "
                    "supported in symbolic analysis")

    def _stamp_vcvs(self, dev: Vcvs) -> None:
        op_, om, cp, cm = (self.node(n) for n in dev.nodes)
        k = self.branch_index[dev.name]
        one = SPoly.constant(SignedSum.one())
        self._add_entry(op_, k, one)
        self._add_entry(om, k, -one)
        self._add_entry(k, op_, one)
        self._add_entry(k, om, -one)
        gain = self._sym(f"a_{dev.name}", dev.gain)
        self._add_entry(k, cp, -gain)
        self._add_entry(k, cm, gain)

    def _stamp_input_vsource(self, dev: VoltageSource) -> None:
        a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
        k = self.branch_index[dev.name]
        one = SPoly.constant(SignedSum.one())
        self._add_entry(a, k, one)
        self._add_entry(b, k, -one)
        self._add_entry(k, a, one)
        self._add_entry(k, b, -one)
        self._rhs_row = k

    def _stamp_mosfet(self, dev: Mosfet) -> None:
        if self.op is None:
            raise SymbolicError("MOS circuit requires an operating point")
        mop = self.op.mos[dev.name]
        d = self.node(dev.drain)
        g = self.node(dev.gate)
        s = self.node(dev.source)
        b = self.node(dev.bulk)
        if mop.vds < 0:
            d, s = s, d
        self._stamp_transconductance(d, s, g, s, self._sym(
            f"gm_{dev.name}", mop.gm))
        self._stamp_admittance(d, s, self._sym(
            f"go_{dev.name}", max(mop.gds, 1e-12)))
        if abs(mop.gmb) > 0 and b != s:
            self._stamp_transconductance(d, s, b, s, self._sym(
                f"gmb_{dev.name}", mop.gmb))
        cgs, cgd, cgb = mos_capacitances(dev, mop.region)
        self._stamp_admittance(g, s, self._sym(
            f"cgs_{dev.name}", cgs, s_power=1))
        self._stamp_admittance(g, d, self._sym(
            f"cgd_{dev.name}", cgd, s_power=1))
        if cgb > 0 and g != b:
            self._stamp_admittance(g, b, self._sym(
                f"cgb_{dev.name}", cgb, s_power=1))
        # Junction capacitances (drain/source to bulk).
        diff_area = dev.w * dev.m * 2.5 * dev.l
        cj = dev.model.cj * diff_area + dev.model.cjsw * 2 * (dev.w * dev.m)
        if cj > 0:
            self._stamp_admittance(d, b, self._sym(
                f"cdb_{dev.name}", cj, s_power=1))
            self._stamp_admittance(s, b, self._sym(
                f"csb_{dev.name}", cj, s_power=1))

    # ------------------------------------------------------------------
    # determinant machinery
    # ------------------------------------------------------------------
    def _matrix(self) -> dict[int, dict[int, SPoly]]:
        """Collapse the entry list to column → row → SPoly."""
        cols: dict[int, dict[int, SPoly]] = {}
        for e in self._entries:
            col = cols.setdefault(e.col, {})
            if e.row in col:
                merged = col[e.row] + e.poly
                if merged.is_zero:
                    del col[e.row]
                else:
                    col[e.row] = merged
            else:
                col[e.row] = e.poly
        return cols

    def determinant(self, drop_row: int | None = None,
                    drop_col: int | None = None,
                    prune: tuple[dict[str, float], float] | None = None) -> SPoly:
        """det(A) with optionally one row and one column removed (a minor)."""
        cols = self._matrix()
        rows_mask = 0
        cols_mask = 0
        for i in range(self.size):
            if i != drop_row:
                rows_mask |= 1 << i
            if i != drop_col:
                cols_mask |= 1 << i
        memo: dict[tuple[int, int], SPoly] = {}
        return self._det(cols, rows_mask, cols_mask, memo, prune)

    def _det(self, cols, rows_mask: int, cols_mask: int, memo,
             prune) -> SPoly:
        if rows_mask == 0:
            return SPoly.constant(SignedSum.one())
        key = (rows_mask, cols_mask)
        cached = memo.get(key)
        if cached is not None:
            return cached
        # Expand along the active column with the fewest active entries.
        best_col, best_rows = -1, None
        best_count = 1 << 30
        cm = cols_mask
        while cm:
            c = (cm & -cm).bit_length() - 1
            cm &= cm - 1
            col_entries = cols.get(c, {})
            active = [r for r in col_entries if rows_mask >> r & 1]
            if len(active) < best_count:
                best_count = len(active)
                best_col, best_rows = c, active
                if best_count == 0:
                    break
        if best_count == 0:
            result = SPoly.zero()
            memo[key] = result
            return result
        col_entries = cols[best_col]
        col_pos = _position(cols_mask, best_col)
        total = SPoly.zero()
        sub_cols = cols_mask & ~(1 << best_col)
        for r in best_rows:
            row_pos = _position(rows_mask, r)
            minor = self._det(cols, rows_mask & ~(1 << r), sub_cols,
                              memo, prune)
            if minor.is_zero:
                continue
            term = col_entries[r] * minor
            if (row_pos + col_pos) % 2 == 1:
                term = -term
            total = total + term
        if prune is not None:
            values, tol = prune
            total = total.pruned(values, tol)
        memo[key] = total
        return total

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer_function(self, output: str,
                          prune_tol: float = 0.0) -> RationalFunction:
        """Symbolic H(s) = V(output)/V(input source).

        ``prune_tol > 0`` enables simplification *during* expansion (the
        ISAAC strategy for large circuits); 0 gives the exact function.
        """
        if self._rhs_row is None:
            raise SymbolicError("circuit has no AC input voltage source")
        out_idx = self.node(output)
        if out_idx < 0:
            raise SymbolicError(
                f"output net {output!r} is an AC ground in this circuit")
        prune = (self.values, prune_tol) if prune_tol > 0 else None
        den = self.determinant(prune=prune)
        if den.is_zero:
            raise SymbolicError("singular symbolic system (det = 0)")
        minor = self.determinant(drop_row=self._rhs_row, drop_col=out_idx,
                                 prune=prune)
        num = minor if (self._rhs_row + out_idx) % 2 == 0 else -minor
        return RationalFunction(num, den, dict(self.values))

    def matrix_size(self) -> int:
        return self.size


def _position(mask: int, index: int) -> int:
    """Rank of ``index`` among the set bits of ``mask`` (for minor signs)."""
    below = mask & ((1 << index) - 1)
    return bin(below).count("1")


@dataclass(frozen=True)
class StructureCharacter:
    """Symbolic first-order character of one circuit structure.

    The quantities structure-ranking needs before any numeric sizing:
    low-frequency gain, the dominant pole, and how big the symbolic
    problem was.  Produced by :func:`characterize_structure` — the
    "741-complexity" use of symbolic analysis the tutorial describes,
    where exact H(s) ranks topologies faster than any simulation sweep.
    """

    gain: float
    gain_db: float
    dominant_pole_hz: float
    n_poles: int
    term_count: int
    matrix_size: int


def characterize_structure(circuit: Circuit, output: str,
                           op: OperatingPoint | None = None,
                           input_source: str | None = None,
                           prune_tol: float = 0.0) -> StructureCharacter:
    """One-call symbolic characterization of a circuit structure.

    Builds the analyzer, extracts ``H(s) = V(output)/V(input)``, and
    condenses it to the scalar figures selection funnels rank on.
    Raises :class:`SymbolicError` for circuits the symbolic engine cannot
    take (inductors, no AC input, AC-ground output, singular system).
    """
    analyzer = SymbolicAnalyzer(circuit, op=op, input_source=input_source)
    h = analyzer.transfer_function(output, prune_tol=prune_tol)
    gain = abs(h.dc_gain())
    if gain == 0.0 or not math.isfinite(gain):
        gain_db = float("-inf") if gain == 0.0 else float("inf")
    else:
        gain_db = 20.0 * math.log10(gain)
    poles = h.poles()
    finite = [abs(p) for p in poles if abs(p) > 0.0]
    dominant = min(finite) / (2.0 * math.pi) if finite else float("inf")
    return StructureCharacter(
        gain=gain, gain_db=gain_db, dominant_pole_hz=dominant,
        n_poles=len(poles), term_count=h.term_count(),
        matrix_size=analyzer.matrix_size())
