"""ISAAC-style symbolic small-signal circuit analysis."""

from repro.symbolic.analyzer import SymbolicAnalyzer, SymbolicError
from repro.symbolic.expr import (
    Monomial,
    RationalFunction,
    SignedSum,
    SPoly,
    mono_str,
    mono_value,
)

__all__ = [
    "Monomial",
    "RationalFunction",
    "SPoly",
    "SignedSum",
    "SymbolicAnalyzer",
    "SymbolicError",
    "mono_str",
    "mono_value",
]
