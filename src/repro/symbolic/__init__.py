"""ISAAC-style symbolic small-signal circuit analysis."""

from repro.symbolic.analyzer import (
    StructureCharacter,
    SymbolicAnalyzer,
    SymbolicError,
    characterize_structure,
)
from repro.symbolic.expr import (
    Monomial,
    RationalFunction,
    SignedSum,
    SPoly,
    mono_str,
    mono_value,
)

__all__ = [
    "Monomial",
    "RationalFunction",
    "SPoly",
    "SignedSum",
    "StructureCharacter",
    "SymbolicAnalyzer",
    "SymbolicError",
    "characterize_structure",
    "mono_str",
    "mono_value",
]
