"""Symbolic expression kernel for ISAAC-style analysis.

The representation is specialized to what linear(ized) circuit analysis
produces: polynomials in the Laplace variable ``s`` whose coefficients are
*signed sums of products of circuit symbols* (gm_m1·go_m2·c_cl, ...).

* :class:`SignedSum` — a sparse multivariate polynomial over symbols,
  stored as ``{monomial: coefficient}`` where a monomial is a sorted tuple
  of ``(symbol, power)`` pairs;
* :class:`SPoly` — a polynomial in ``s`` with :class:`SignedSum`
  coefficients, stored as ``{degree: SignedSum}``;
* :class:`RationalFunction` — a ratio of two :class:`SPoly`, the shape of
  every small-signal transfer function.

All objects are immutable in practice (operations return new objects), so
they can be memoized freely by the determinant expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

Monomial = tuple[tuple[str, int], ...]

ONE_MONO: Monomial = ()


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Multiply two monomials (merge sorted power lists)."""
    powers: dict[str, int] = {}
    for sym, p in a:
        powers[sym] = powers.get(sym, 0) + p
    for sym, p in b:
        powers[sym] = powers.get(sym, 0) + p
    return tuple(sorted(powers.items()))


def mono_value(mono: Monomial, values: dict[str, float]) -> float:
    out = 1.0
    for sym, p in mono:
        out *= values[sym] ** p
    return out


def mono_str(mono: Monomial) -> str:
    if not mono:
        return "1"
    parts = []
    for sym, p in mono:
        parts.append(sym if p == 1 else f"{sym}^{p}")
    return "*".join(parts)


class SignedSum:
    """Sparse signed sum of monomials: Σ coeff · Π symbol^power."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict[Monomial, float] | None = None):
        self.terms: dict[Monomial, float] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0.0:
                    self.terms[mono] = coeff

    # -- constructors --------------------------------------------------
    @staticmethod
    def zero() -> "SignedSum":
        return SignedSum()

    @staticmethod
    def one() -> "SignedSum":
        return SignedSum({ONE_MONO: 1.0})

    @staticmethod
    def number(value: float) -> "SignedSum":
        return SignedSum({ONE_MONO: float(value)}) if value else SignedSum()

    @staticmethod
    def symbol(name: str, coeff: float = 1.0) -> "SignedSum":
        return SignedSum({((name, 1),): coeff})

    # -- queries --------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        return not self.terms

    def term_count(self) -> int:
        return len(self.terms)

    def symbols(self) -> set[str]:
        out: set[str] = set()
        for mono in self.terms:
            out.update(sym for sym, _ in mono)
        return out

    # -- algebra ---------------------------------------------------------
    def __add__(self, other: "SignedSum") -> "SignedSum":
        if self.is_zero:
            return other
        if other.is_zero:
            return self
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            new = terms.get(mono, 0.0) + coeff
            if new == 0.0:
                terms.pop(mono, None)
            else:
                terms[mono] = new
        out = SignedSum()
        out.terms = terms
        return out

    def __sub__(self, other: "SignedSum") -> "SignedSum":
        return self + (-other)

    def __neg__(self) -> "SignedSum":
        out = SignedSum()
        out.terms = {m: -c for m, c in self.terms.items()}
        return out

    def __mul__(self, other: "SignedSum") -> "SignedSum":
        if self.is_zero or other.is_zero:
            return SignedSum()
        terms: dict[Monomial, float] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = _mono_mul(m1, m2)
                new = terms.get(mono, 0.0) + c1 * c2
                if new == 0.0:
                    terms.pop(mono, None)
                else:
                    terms[mono] = new
        out = SignedSum()
        out.terms = terms
        return out

    def scale(self, factor: float) -> "SignedSum":
        if factor == 0.0:
            return SignedSum()
        out = SignedSum()
        out.terms = {m: c * factor for m, c in self.terms.items()}
        return out

    def __eq__(self, other) -> bool:
        return isinstance(other, SignedSum) and self.terms == other.terms

    def __hash__(self):
        return hash(frozenset(self.terms.items()))

    # -- evaluation / display --------------------------------------------
    def evaluate(self, values: dict[str, float]) -> float:
        return sum(c * mono_value(m, values) for m, c in self.terms.items())

    def magnitudes(self, values: dict[str, float]) -> dict[Monomial, float]:
        return {m: abs(c) * abs(mono_value(m, values))
                for m, c in self.terms.items()}

    def pruned(self, values: dict[str, float], rel_tol: float) -> "SignedSum":
        """Drop terms negligible at the nominal operating point.

        This is the ISAAC simplification strategy: numeric nominal values
        rank terms and small ones vanish.  The threshold is anchored on the
        magnitude of the *evaluated sum* rather than the largest term —
        otherwise near-cancelling symmetric terms (gm_m1·X − gm_m2·X with
        gm_m1 ≈ gm_m2) would mask the small terms that define the residual,
        the classic failure mode of naive magnitude pruning.
        """
        if self.is_zero:
            return self
        mags = self.magnitudes(values)
        peak = max(mags.values())
        if peak == 0.0:
            return SignedSum()
        anchor = abs(self.evaluate(values))
        if anchor == 0.0:
            anchor = peak
        keep = {m: c for m, c in self.terms.items()
                if mags[m] >= rel_tol * anchor}
        out = SignedSum()
        out.terms = keep
        return out

    def to_string(self, sort_by: dict[str, float] | None = None) -> str:
        if self.is_zero:
            return "0"
        items = list(self.terms.items())
        if sort_by:
            items.sort(key=lambda mc: -abs(mc[1] * mono_value(mc[0], sort_by)))
        else:
            items.sort(key=lambda mc: mono_str(mc[0]))
        parts = []
        for mono, coeff in items:
            body = mono_str(mono)
            if coeff == 1.0 and mono:
                text = body
            elif coeff == -1.0 and mono:
                text = f"-{body}"
            elif not mono:
                text = f"{coeff:g}"
            else:
                text = f"{coeff:g}*{body}"
            parts.append(text)
        joined = " + ".join(parts)
        return joined.replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"SignedSum({self.to_string()})"


ZERO = SignedSum.zero()


class SPoly:
    """Polynomial in the Laplace variable s with SignedSum coefficients."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: dict[int, SignedSum] | None = None):
        self.coeffs: dict[int, SignedSum] = {}
        if coeffs:
            for deg, ss in coeffs.items():
                if not ss.is_zero:
                    self.coeffs[deg] = ss

    @staticmethod
    def zero() -> "SPoly":
        return SPoly()

    @staticmethod
    def constant(ss: SignedSum) -> "SPoly":
        return SPoly({0: ss})

    @staticmethod
    def symbol(name: str, s_power: int = 0, coeff: float = 1.0) -> "SPoly":
        return SPoly({s_power: SignedSum.symbol(name, coeff)})

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    def degree(self) -> int:
        return max(self.coeffs) if self.coeffs else 0

    def term_count(self) -> int:
        return sum(ss.term_count() for ss in self.coeffs.values())

    def coefficient(self, degree: int) -> SignedSum:
        return self.coeffs.get(degree, ZERO)

    def __add__(self, other: "SPoly") -> "SPoly":
        if self.is_zero:
            return other
        if other.is_zero:
            return self
        coeffs = dict(self.coeffs)
        for deg, ss in other.coeffs.items():
            merged = coeffs.get(deg, ZERO) + ss
            if merged.is_zero:
                coeffs.pop(deg, None)
            else:
                coeffs[deg] = merged
        out = SPoly()
        out.coeffs = coeffs
        return out

    def __sub__(self, other: "SPoly") -> "SPoly":
        return self + (-other)

    def __neg__(self) -> "SPoly":
        out = SPoly()
        out.coeffs = {d: -ss for d, ss in self.coeffs.items()}
        return out

    def __mul__(self, other: "SPoly") -> "SPoly":
        if self.is_zero or other.is_zero:
            return SPoly()
        coeffs: dict[int, SignedSum] = {}
        for d1, s1 in self.coeffs.items():
            for d2, s2 in other.coeffs.items():
                product = s1 * s2
                if product.is_zero:
                    continue
                deg = d1 + d2
                merged = coeffs.get(deg, ZERO) + product
                if merged.is_zero:
                    coeffs.pop(deg, None)
                else:
                    coeffs[deg] = merged
        out = SPoly()
        out.coeffs = coeffs
        return out

    def __eq__(self, other) -> bool:
        return isinstance(other, SPoly) and self.coeffs == other.coeffs

    def __hash__(self):
        return hash(frozenset((d, ss) for d, ss in self.coeffs.items()))

    def evaluate(self, s: complex, values: dict[str, float]) -> complex:
        return sum(ss.evaluate(values) * s ** deg
                   for deg, ss in self.coeffs.items())

    def numeric_coefficients(self, values: dict[str, float]) -> np.ndarray:
        """Dense ascending-degree coefficient array with symbols substituted."""
        if self.is_zero:
            return np.zeros(1)
        n = self.degree() + 1
        out = np.zeros(n)
        for deg, ss in self.coeffs.items():
            out[deg] = ss.evaluate(values)
        return out

    def pruned(self, values: dict[str, float], rel_tol: float) -> "SPoly":
        out = SPoly()
        for deg, ss in self.coeffs.items():
            kept = ss.pruned(values, rel_tol)
            if not kept.is_zero:
                out.coeffs[deg] = kept
        return out

    def to_string(self, sort_by: dict[str, float] | None = None) -> str:
        if self.is_zero:
            return "0"
        parts = []
        for deg in sorted(self.coeffs):
            body = self.coeffs[deg].to_string(sort_by)
            if deg == 0:
                parts.append(f"({body})")
            elif deg == 1:
                parts.append(f"s*({body})")
            else:
                parts.append(f"s^{deg}*({body})")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"SPoly({self.to_string()})"


@dataclass
class RationalFunction:
    """H(s) = num(s)/den(s) with symbolic coefficients."""

    num: SPoly
    den: SPoly
    values: dict[str, float] = field(default_factory=dict)

    def evaluate(self, s: complex,
                 values: dict[str, float] | None = None) -> complex:
        vals = values if values is not None else self.values
        den = self.den.evaluate(s, vals)
        if den == 0:
            return complex("inf")
        return self.num.evaluate(s, vals) / den

    def evaluate_jw(self, freq_hz: float,
                    values: dict[str, float] | None = None) -> complex:
        return self.evaluate(2j * np.pi * freq_hz, values)

    def dc_gain(self, values: dict[str, float] | None = None) -> float:
        vals = values if values is not None else self.values
        # Lowest common nonzero degree handles integrating responses.
        num0 = self.num.coefficient(0).evaluate(vals)
        den0 = self.den.coefficient(0).evaluate(vals)
        if den0 == 0:
            return float("inf")
        return num0 / den0

    def poles(self, values: dict[str, float] | None = None) -> np.ndarray:
        vals = values if values is not None else self.values
        coeffs = self.den.numeric_coefficients(vals)
        return _roots_ascending(coeffs)

    def zeros(self, values: dict[str, float] | None = None) -> np.ndarray:
        vals = values if values is not None else self.values
        coeffs = self.num.numeric_coefficients(vals)
        return _roots_ascending(coeffs)

    def simplified(self, rel_tol: float,
                   values: dict[str, float] | None = None) -> "RationalFunction":
        vals = values if values is not None else self.values
        return RationalFunction(self.num.pruned(vals, rel_tol),
                                self.den.pruned(vals, rel_tol),
                                dict(vals))

    def term_count(self) -> int:
        return self.num.term_count() + self.den.term_count()

    def to_string(self) -> str:
        sort = self.values or None
        return (f"({self.num.to_string(sort)})\n"
                f"  / ({self.den.to_string(sort)})")


def _roots_ascending(coeffs: np.ndarray) -> np.ndarray:
    """Roots of a polynomial given ascending-degree coefficients."""
    trimmed = np.trim_zeros(coeffs, "b")
    if len(trimmed) <= 1:
        return np.array([])
    return np.roots(trimmed[::-1])
