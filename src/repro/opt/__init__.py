"""Optimization engines: annealing, genetic, intervals, equation ordering."""

from repro.opt.anneal import (
    Annealer,
    AnnealResult,
    AnnealSchedule,
    ContinuousSpace,
    anneal_continuous,
)
from repro.opt.genetic import (
    CategoricalGene,
    FloatGene,
    GaResult,
    GeneticOptimizer,
)
from repro.opt.interval import Interval, IntervalError, imax, imin
from repro.opt.ordering import (
    Block,
    Equation,
    EvaluationPlan,
    OrderingError,
    UnderConstrained,
    order_equations,
)

__all__ = [
    "Annealer",
    "AnnealResult",
    "AnnealSchedule",
    "Block",
    "CategoricalGene",
    "ContinuousSpace",
    "Equation",
    "EvaluationPlan",
    "FloatGene",
    "GaResult",
    "GeneticOptimizer",
    "Interval",
    "IntervalError",
    "OrderingError",
    "UnderConstrained",
    "anneal_continuous",
    "imax",
    "imin",
    "order_equations",
]
