"""Generic simulated annealing used across the toolkit.

One engine serves OPTIMAN-style circuit sizing, the OBLX numerical search,
the KOAN device placer, the WRIGHT floorplanner and the RAIL grid sizer —
the tutorial's observation that a decade of analog CAD was "cast mostly in
the form of numerical and combinatorial optimization tasks" made concrete.

The schedule is the standard geometric one with acceptance-ratio-derived
initial temperature and per-temperature move batches; everything is
deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

import numpy as np

State = TypeVar("State")


@dataclass
class AnnealSchedule:
    """Cooling schedule parameters."""

    initial_acceptance: float = 0.8   # target fraction of uphill accepts
    cooling: float = 0.9              # geometric temperature factor
    moves_per_temperature: int = 100
    min_temperature_ratio: float = 1e-5
    stop_after_stale: int = 6         # temperatures without improvement
    max_evaluations: int = 200_000


@dataclass
class AnnealResult(Generic[State]):
    best_state: State
    best_cost: float
    evaluations: int
    temperatures: int
    history: list[float] = field(default_factory=list)  # best cost per temp
    failures: int = 0  # evaluations that came back as EvalFailure


class Annealer(Generic[State]):
    """Simulated annealing over an arbitrary state space.

    Parameters
    ----------
    cost:
        State → scalar cost (lower is better).
    propose:
        ``(state, rng, temperature_fraction) → new state``.  The move
        generator may use the temperature fraction (1 → hot, 0 → cold) to
        shrink move ranges as the anneal cools, as KOAN does.
    copy_state:
        Deep-copy hook; defaults to identity for immutable states.
    seed / rng:
        Either a seed (a fresh ``numpy.random.Generator`` is created) or an
        explicit generator threaded in by the caller; all stochastic
        decisions draw from it, so runs are reproducible either way.
    executor:
        Optional batch-evaluation hook — anything with
        ``map_evaluate(fn, states) -> list[float]``, e.g. a
        :class:`repro.engine.SerialExecutor`/``ParallelExecutor`` or a
        cache-aware :class:`repro.engine.KeyedEngine`.  All cost
        evaluations route through it.
    batch_size:
        Moves proposed (and evaluated as one batch) per acceptance round.
        1 reproduces the classic serial anneal exactly; larger values
        trade some search fidelity for executor throughput: the whole
        batch is proposed from the same state, then accepted sequentially.
        Results are identical for any executor at fixed (seed, batch_size)
        because proposals and acceptance draws stay in the caller.
    failure_cost:
        Cost assigned to an evaluation that comes back as an
        :class:`repro.engine.EvalFailure` (a resilient executor's
        out-of-retries result).  The default ``inf`` means a failed
        candidate is never accepted but the anneal keeps running — one
        bad point no longer kills the whole synthesis run.  The penalty
        is deterministic, so seeded serial and parallel runs under the
        same fault schedule stay bit-identical.
    surrogate:
        Optional :class:`repro.surrogate.SurrogateScreen`.  Every cost
        batch routes through ``surrogate.screen(raw_map, states)``
        instead of the raw executor path: only the candidates the
        trust-region policy selects are actually evaluated, the rest
        receive predicted costs.  The screen's winner-verification rule
        guarantees the returned ``best_cost`` always comes from a real
        evaluation, and its decisions are deterministic per (seed,
        config), so the batching/executor determinism contract is
        preserved.
    """

    def __init__(self, cost: Callable[[State], float],
                 propose: Callable[[State, np.random.Generator, float], State],
                 schedule: AnnealSchedule | None = None,
                 copy_state: Callable[[State], State] = lambda s: s,
                 seed: int = 1,
                 rng: np.random.Generator | None = None,
                 executor=None,
                 batch_size: int = 1,
                 failure_cost: float = float("inf"),
                 surrogate=None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cost = cost
        self.propose = propose
        self.schedule = schedule or AnnealSchedule()
        self.copy_state = copy_state
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.executor = executor
        self.batch_size = batch_size
        self.failure_cost = failure_cost
        self.surrogate = surrogate
        self.failures = 0

    def _raw_map(self, states: list[State]) -> list:
        """The unscreened evaluation path (executor or direct)."""
        if self.executor is None:
            return [self.cost(s) for s in states]
        return list(self.executor.map_evaluate(self.cost, states))

    def _map(self, states: list[State]) -> list[float]:
        from repro.engine.faults import is_failure
        if self.surrogate is not None:
            raw = self.surrogate.screen(self._raw_map, states)
        else:
            raw = self._raw_map(states)
        costs: list[float] = []
        for c in raw:
            if is_failure(c):
                self.failures += 1
                costs.append(self.failure_cost)
            else:
                costs.append(c)
        return costs

    # ------------------------------------------------------------------
    def initial_temperature(self, state: State, samples: int = 40) -> float:
        """Temperature at which ``initial_acceptance`` of uphill moves pass."""
        # The probe chain's proposals never look at costs, so the whole
        # chain can be proposed first and evaluated as one batch.
        chain: list[State] = []
        current = state
        for _ in range(samples):
            current = self.propose(self.copy_state(current), self.rng, 1.0)
            chain.append(current)
        costs = self._map([state] + chain)
        base = costs[0]
        # Failed (infinite-cost) probes carry no temperature information;
        # only finite uphill deltas enter the mean.
        uphill = [b - a for a, b in zip(costs, costs[1:])
                  if b > a and math.isfinite(b - a)]
        if not uphill:
            base_scale = abs(base) if math.isfinite(base) else 1.0
            return max(base_scale, 1.0) * 0.1
        mean_uphill = float(np.mean(uphill))
        p = min(max(self.schedule.initial_acceptance, 1e-3), 0.999)
        return mean_uphill / (-math.log(p))

    # ------------------------------------------------------------------
    def run(self, initial: State,
            temperature: float | None = None) -> AnnealResult[State]:
        from repro.engine.trace import current_tracer
        tracer = current_tracer()
        sched = self.schedule
        self.failures = 0
        current = self.copy_state(initial)
        current_cost = self._map([current])[0]
        best = self.copy_state(current)
        best_cost = current_cost
        evaluations = 1
        t0 = temperature if temperature is not None else \
            self.initial_temperature(current)
        evaluations += 40 if temperature is None else 0
        t = max(t0, 1e-300)
        t_floor = t * sched.min_temperature_ratio
        stale = 0
        temps = 0
        history: list[float] = []
        while (t > t_floor and stale < sched.stop_after_stale
               and evaluations < sched.max_evaluations):
            improved = False
            frac = (math.log(max(t, t_floor)) - math.log(t_floor)) / (
                math.log(t0) - math.log(t_floor) + 1e-12)
            moves = 0
            while (moves < sched.moves_per_temperature
                   and evaluations < sched.max_evaluations):
                k = min(self.batch_size,
                        sched.moves_per_temperature - moves,
                        sched.max_evaluations - evaluations)
                trials = [self.propose(self.copy_state(current),
                                       self.rng, frac)
                          for _ in range(k)]
                for trial, trial_cost in zip(trials, self._map(trials)):
                    evaluations += 1
                    moves += 1
                    # inf - inf is nan; treat a failed trial against a
                    # failed current state as a plain uphill rejection so
                    # the acceptance draw is still consumed (determinism).
                    delta = trial_cost - current_cost
                    if math.isnan(delta):
                        delta = float("inf")
                    if delta <= 0 or self.rng.random() < math.exp(
                            -delta / max(t, 1e-300)):
                        current, current_cost = trial, trial_cost
                        if current_cost < best_cost:
                            best = self.copy_state(current)
                            best_cost = current_cost
                            improved = True
            history.append(best_cost)
            stale = 0 if improved else stale + 1
            t *= sched.cooling
            temps += 1
            if tracer is not None:
                tracer.event("anneal_temperature", index=temps - 1,
                             evaluations=evaluations, best_cost=best_cost,
                             improved=improved, failures=self.failures)
        if tracer is not None:
            tracer.event("anneal_done", temperatures=temps,
                         evaluations=evaluations, best_cost=best_cost,
                         failures=self.failures)
        return AnnealResult(best, best_cost, evaluations, temps, history,
                            failures=self.failures)


# ----------------------------------------------------------------------
# Convenience wrapper for continuous parameter vectors (OPTIMAN/OBLX use)
# ----------------------------------------------------------------------

@dataclass
class ContinuousSpace:
    """Box-bounded continuous search space with log-scale option.

    Log scaling matters for device sizes and currents, which span decades;
    it is what all the sizing tools effectively search in.
    """

    names: list[str]
    lower: np.ndarray
    upper: np.ndarray
    log_scale: bool = True

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if np.any(self.lower >= self.upper):
            raise ValueError("lower bounds must be below upper bounds")
        if self.log_scale and np.any(self.lower <= 0):
            raise ValueError("log-scale space requires positive bounds")

    @property
    def dim(self) -> int:
        return len(self.names)

    def clip(self, x: np.ndarray) -> np.ndarray:
        return np.clip(x, self.lower, self.upper)

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(self.dim)
        if self.log_scale:
            lo, hi = np.log(self.lower), np.log(self.upper)
            return np.exp(lo + u * (hi - lo))
        return self.lower + u * (self.upper - self.lower)

    def perturb(self, x: np.ndarray, rng: np.random.Generator,
                fraction: float) -> np.ndarray:
        """Move a random subset of coordinates, range scaled by fraction."""
        x = x.copy()
        n_move = max(1, int(round(self.dim * 0.3)))
        idx = rng.choice(self.dim, size=n_move, replace=False)
        scale = 0.02 + 0.5 * max(fraction, 0.0)
        if self.log_scale:
            lo, hi = np.log(self.lower), np.log(self.upper)
            span = hi - lo
            xl = np.log(x)
            xl[idx] += rng.normal(0.0, 1.0, size=n_move) * scale * span[idx]
            x = np.exp(np.clip(xl, lo, hi))
        else:
            span = self.upper - self.lower
            x[idx] += rng.normal(0.0, 1.0, size=n_move) * scale * span[idx]
            x = self.clip(x)
        return x

    def to_dict(self, x: np.ndarray) -> dict[str, float]:
        return dict(zip(self.names, x))


class _DictCost:
    """Vector-state adapter for a dict-based cost.

    A class (not a closure) so the annealer's cost function stays
    picklable whenever the user's cost is — which is what lets a
    ``ParallelExecutor`` ship it to worker processes.
    """

    def __init__(self, cost: Callable[[dict[str, float]], float],
                 space: ContinuousSpace):
        self.cost = cost
        self.space = space

    def __call__(self, x: np.ndarray) -> float:
        return self.cost(self.space.to_dict(x))


def anneal_continuous(cost: Callable[[dict[str, float]], float],
                      space: ContinuousSpace,
                      schedule: AnnealSchedule | None = None,
                      seed: int = 1,
                      x0: np.ndarray | None = None,
                      rng: np.random.Generator | None = None,
                      executor=None,
                      batch_size: int = 1,
                      failure_cost: float = float("inf"),
                      surrogate=None) -> AnnealResult[np.ndarray]:
    """Anneal a scalar cost over a named continuous box.

    Pass ``rng`` to thread one explicit generator through both the start
    point and the anneal itself; otherwise two generators are derived from
    ``seed`` (the historical behaviour).  ``executor``/``batch_size``/
    ``failure_cost``/``surrogate`` are forwarded to :class:`Annealer` for
    batched, failure-tolerant (optionally surrogate-screened) cost
    evaluation.
    """
    start_rng = rng if rng is not None else np.random.default_rng(seed)
    start = space.clip(x0) if x0 is not None else space.random_point(start_rng)

    annealer = Annealer(
        cost=_DictCost(cost, space),
        propose=lambda x, r, f: space.perturb(x, r, f),
        schedule=schedule,
        copy_state=lambda x: x.copy(),
        seed=seed,
        rng=rng,
        executor=executor,
        batch_size=batch_size,
        failure_cost=failure_cost,
        surrogate=surrogate,
    )
    return annealer.run(start)
