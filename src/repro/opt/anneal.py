"""Generic simulated annealing used across the toolkit.

One engine serves OPTIMAN-style circuit sizing, the OBLX numerical search,
the KOAN device placer, the WRIGHT floorplanner and the RAIL grid sizer —
the tutorial's observation that a decade of analog CAD was "cast mostly in
the form of numerical and combinatorial optimization tasks" made concrete.

The schedule is the standard geometric one with acceptance-ratio-derived
initial temperature and per-temperature move batches; everything is
deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

import numpy as np

State = TypeVar("State")


@dataclass
class AnnealSchedule:
    """Cooling schedule parameters."""

    initial_acceptance: float = 0.8   # target fraction of uphill accepts
    cooling: float = 0.9              # geometric temperature factor
    moves_per_temperature: int = 100
    min_temperature_ratio: float = 1e-5
    stop_after_stale: int = 6         # temperatures without improvement
    max_evaluations: int = 200_000


@dataclass
class AnnealResult(Generic[State]):
    best_state: State
    best_cost: float
    evaluations: int
    temperatures: int
    history: list[float] = field(default_factory=list)  # best cost per temp


class Annealer(Generic[State]):
    """Simulated annealing over an arbitrary state space.

    Parameters
    ----------
    cost:
        State → scalar cost (lower is better).
    propose:
        ``(state, rng, temperature_fraction) → new state``.  The move
        generator may use the temperature fraction (1 → hot, 0 → cold) to
        shrink move ranges as the anneal cools, as KOAN does.
    copy_state:
        Deep-copy hook; defaults to identity for immutable states.
    """

    def __init__(self, cost: Callable[[State], float],
                 propose: Callable[[State, np.random.Generator, float], State],
                 schedule: AnnealSchedule | None = None,
                 copy_state: Callable[[State], State] = lambda s: s,
                 seed: int = 1):
        self.cost = cost
        self.propose = propose
        self.schedule = schedule or AnnealSchedule()
        self.copy_state = copy_state
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def initial_temperature(self, state: State, samples: int = 40) -> float:
        """Temperature at which ``initial_acceptance`` of uphill moves pass."""
        base = self.cost(state)
        uphill: list[float] = []
        current = state
        current_cost = base
        for _ in range(samples):
            trial = self.propose(self.copy_state(current), self.rng, 1.0)
            c = self.cost(trial)
            if c > current_cost:
                uphill.append(c - current_cost)
            current, current_cost = trial, c
        if not uphill:
            return max(abs(base), 1.0) * 0.1
        mean_uphill = float(np.mean(uphill))
        p = min(max(self.schedule.initial_acceptance, 1e-3), 0.999)
        return mean_uphill / (-math.log(p))

    # ------------------------------------------------------------------
    def run(self, initial: State,
            temperature: float | None = None) -> AnnealResult[State]:
        sched = self.schedule
        current = self.copy_state(initial)
        current_cost = self.cost(current)
        best = self.copy_state(current)
        best_cost = current_cost
        evaluations = 1
        t0 = temperature if temperature is not None else \
            self.initial_temperature(current)
        evaluations += 40 if temperature is None else 0
        t = max(t0, 1e-300)
        t_floor = t * sched.min_temperature_ratio
        stale = 0
        temps = 0
        history: list[float] = []
        while (t > t_floor and stale < sched.stop_after_stale
               and evaluations < sched.max_evaluations):
            improved = False
            frac = (math.log(max(t, t_floor)) - math.log(t_floor)) / (
                math.log(t0) - math.log(t_floor) + 1e-12)
            for _ in range(sched.moves_per_temperature):
                trial = self.propose(self.copy_state(current), self.rng, frac)
                trial_cost = self.cost(trial)
                evaluations += 1
                delta = trial_cost - current_cost
                if delta <= 0 or self.rng.random() < math.exp(
                        -delta / max(t, 1e-300)):
                    current, current_cost = trial, trial_cost
                    if current_cost < best_cost:
                        best = self.copy_state(current)
                        best_cost = current_cost
                        improved = True
                if evaluations >= sched.max_evaluations:
                    break
            history.append(best_cost)
            stale = 0 if improved else stale + 1
            t *= sched.cooling
            temps += 1
        return AnnealResult(best, best_cost, evaluations, temps, history)


# ----------------------------------------------------------------------
# Convenience wrapper for continuous parameter vectors (OPTIMAN/OBLX use)
# ----------------------------------------------------------------------

@dataclass
class ContinuousSpace:
    """Box-bounded continuous search space with log-scale option.

    Log scaling matters for device sizes and currents, which span decades;
    it is what all the sizing tools effectively search in.
    """

    names: list[str]
    lower: np.ndarray
    upper: np.ndarray
    log_scale: bool = True

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if np.any(self.lower >= self.upper):
            raise ValueError("lower bounds must be below upper bounds")
        if self.log_scale and np.any(self.lower <= 0):
            raise ValueError("log-scale space requires positive bounds")

    @property
    def dim(self) -> int:
        return len(self.names)

    def clip(self, x: np.ndarray) -> np.ndarray:
        return np.clip(x, self.lower, self.upper)

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(self.dim)
        if self.log_scale:
            lo, hi = np.log(self.lower), np.log(self.upper)
            return np.exp(lo + u * (hi - lo))
        return self.lower + u * (self.upper - self.lower)

    def perturb(self, x: np.ndarray, rng: np.random.Generator,
                fraction: float) -> np.ndarray:
        """Move a random subset of coordinates, range scaled by fraction."""
        x = x.copy()
        n_move = max(1, int(round(self.dim * 0.3)))
        idx = rng.choice(self.dim, size=n_move, replace=False)
        scale = 0.02 + 0.5 * max(fraction, 0.0)
        if self.log_scale:
            lo, hi = np.log(self.lower), np.log(self.upper)
            span = hi - lo
            xl = np.log(x)
            xl[idx] += rng.normal(0.0, 1.0, size=n_move) * scale * span[idx]
            x = np.exp(np.clip(xl, lo, hi))
        else:
            span = self.upper - self.lower
            x[idx] += rng.normal(0.0, 1.0, size=n_move) * scale * span[idx]
            x = self.clip(x)
        return x

    def to_dict(self, x: np.ndarray) -> dict[str, float]:
        return dict(zip(self.names, x))


def anneal_continuous(cost: Callable[[dict[str, float]], float],
                      space: ContinuousSpace,
                      schedule: AnnealSchedule | None = None,
                      seed: int = 1,
                      x0: np.ndarray | None = None) -> AnnealResult[np.ndarray]:
    """Anneal a scalar cost over a named continuous box."""
    rng = np.random.default_rng(seed)
    start = space.clip(x0) if x0 is not None else space.random_point(rng)

    annealer = Annealer(
        cost=lambda x: cost(space.to_dict(x)),
        propose=lambda x, r, f: space.perturb(x, r, f),
        schedule=schedule,
        copy_state=lambda x: x.copy(),
        seed=seed,
    )
    return annealer.run(start)
