"""Interval arithmetic for topology feasibility analysis.

The topology-selection tool of [Veselinovic et al., ED&TC'95] decides
whether a circuit topology *can* meet a specification by boundary checking
and interval analysis: performance equations are evaluated over the
intervals of the design parameters; if the achievable performance interval
does not intersect the specification, the topology is infeasible and is
discarded before any expensive sizing.

:class:`Interval` implements the standard closed-interval arithmetic with
outward-directed results; monotone transcendental helpers cover the
functions used by analog design equations (sqrt, log, exp, powers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class IntervalError(ValueError):
    """Raised on invalid interval operations (e.g. division through zero)."""


@dataclass(frozen=True)
class Interval:
    """Closed interval [lo, hi] with arithmetic that bounds all outcomes."""

    lo: float
    hi: float

    def __post_init__(self):
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise IntervalError("NaN interval bound")
        if self.lo > self.hi:
            raise IntervalError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------
    @staticmethod
    def point(x: float) -> "Interval":
        return Interval(x, x)

    @staticmethod
    def make(a: float, b: float) -> "Interval":
        return Interval(min(a, b), max(a, b))

    # -- predicates -------------------------------------------------------
    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: float) -> bool:
        return self.lo <= x <= self.hi

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def strictly_positive(self) -> bool:
        return self.lo > 0.0

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other) -> "Interval":
        if isinstance(other, Interval):
            return other
        return Interval.point(float(other))

    def __add__(self, other) -> "Interval":
        o = self._coerce(other)
        return Interval(self.lo + o.lo, self.hi + o.hi)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other) -> "Interval":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Interval":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Interval":
        o = self._coerce(other)
        products = (self.lo * o.lo, self.lo * o.hi,
                    self.hi * o.lo, self.hi * o.hi)
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def inverse(self) -> "Interval":
        if self.lo <= 0.0 <= self.hi:
            raise IntervalError(f"inverse of interval containing 0: {self}")
        return Interval(1.0 / self.hi, 1.0 / self.lo)

    def __truediv__(self, other) -> "Interval":
        return self * self._coerce(other).inverse()

    def __rtruediv__(self, other) -> "Interval":
        return self._coerce(other) * self.inverse()

    def __pow__(self, n: int) -> "Interval":
        if not isinstance(n, int):
            raise IntervalError("interval power requires integer exponent")
        if n == 0:
            return Interval.point(1.0)
        if n < 0:
            return (self ** (-n)).inverse()
        if n % 2 == 1:
            return Interval(self.lo ** n, self.hi ** n)
        # Even power: minimum is 0 when the interval straddles zero.
        lo_p, hi_p = abs(self.lo) ** n, abs(self.hi) ** n
        if self.lo <= 0.0 <= self.hi:
            return Interval(0.0, max(lo_p, hi_p))
        return Interval(min(lo_p, hi_p), max(lo_p, hi_p))

    # -- monotone functions ------------------------------------------------
    def sqrt(self) -> "Interval":
        if self.lo < 0:
            raise IntervalError(f"sqrt of negative interval {self}")
        return Interval(math.sqrt(self.lo), math.sqrt(self.hi))

    def log(self) -> "Interval":
        if self.lo <= 0:
            raise IntervalError(f"log of non-positive interval {self}")
        return Interval(math.log(self.lo), math.log(self.hi))

    def exp(self) -> "Interval":
        return Interval(math.exp(self.lo), math.exp(self.hi))

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


def imin(*intervals: Interval) -> Interval:
    return Interval(min(i.lo for i in intervals), min(i.hi for i in intervals))


def imax(*intervals: Interval) -> Interval:
    return Interval(max(i.lo for i in intervals), max(i.hi for i in intervals))
