"""Genetic algorithm for mixed discrete/continuous search.

DARWIN [Kruiskamp & Leenaerts, DAC'95] selected opamp topologies with a GA;
SEAS used simulated evolution.  This module provides the engine both our
GA-based topology selector and the mixed topology+sizing optimizer build
on: tournament selection, uniform crossover, per-gene mutation, elitism.

A genome is a list of genes, each either an index into a categorical choice
list (topology bits) or a float in a bounded range (sizing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class CategoricalGene:
    name: str
    choices: tuple

    def random(self, rng: np.random.Generator):
        return self.choices[rng.integers(len(self.choices))]

    def mutate(self, value, rng: np.random.Generator):
        return self.random(rng)


@dataclass(frozen=True)
class FloatGene:
    name: str
    lower: float
    upper: float
    log_scale: bool = True

    def __post_init__(self):
        if self.lower >= self.upper:
            raise ValueError(f"gene {self.name}: bad bounds")
        if self.log_scale and self.lower <= 0:
            raise ValueError(f"gene {self.name}: log scale needs > 0 bounds")

    def random(self, rng: np.random.Generator) -> float:
        u = rng.random()
        if self.log_scale:
            return float(np.exp(np.log(self.lower)
                                + u * np.log(self.upper / self.lower)))
        return self.lower + u * (self.upper - self.lower)

    def mutate(self, value: float, rng: np.random.Generator) -> float:
        if self.log_scale:
            sigma = 0.15 * np.log(self.upper / self.lower)
            out = float(np.exp(np.log(value) + rng.normal(0, sigma)))
        else:
            sigma = 0.15 * (self.upper - self.lower)
            out = value + rng.normal(0, sigma)
        return float(np.clip(out, self.lower, self.upper))


Gene = CategoricalGene | FloatGene
Genome = dict


@dataclass
class GaResult:
    best: Genome
    best_fitness: float
    generations: int
    evaluations: int
    history: list[float] = field(default_factory=list)
    failures: int = 0  # evaluations that came back as EvalFailure


class GeneticOptimizer:
    """Minimizing GA over a fixed gene list.

    ``rng`` threads an explicit ``numpy.random.Generator`` through every
    stochastic decision (otherwise one is derived from ``seed``), and
    ``executor`` is the batch-evaluation hook — anything with
    ``map_evaluate(fn, genomes) -> list[float]`` (e.g. a
    :class:`repro.engine.ParallelExecutor` or cache-aware
    :class:`repro.engine.KeyedEngine`).  Each generation's population is
    scored through it in one batch, in deterministic order, so serial and
    parallel runs of the same seed are identical.

    ``surrogate`` optionally routes each generation through a
    :class:`repro.surrogate.SurrogateScreen`: only the candidates the
    trust-region policy selects are truly evaluated, the rest score
    their predicted fitness (claimed winners always verified for real).
    Genomes are plain dicts, so the screen's ``featurize`` can be a
    :meth:`repro.surrogate.FeatureSpec.encode` built with
    :meth:`~repro.surrogate.FeatureSpec.from_genes`.
    """

    def __init__(self, genes: Sequence[Gene],
                 fitness: Callable[[Genome], float],
                 population: int = 40,
                 crossover_rate: float = 0.9,
                 mutation_rate: float = 0.15,
                 elite: int = 2,
                 tournament: int = 3,
                 seed: int = 1,
                 rng: np.random.Generator | None = None,
                 executor=None,
                 failure_fitness: float = float("inf"),
                 surrogate=None):
        if population < 4:
            raise ValueError("population must be at least 4")
        self.genes = list(genes)
        names = [g.name for g in self.genes]
        if len(names) != len(set(names)):
            raise ValueError("duplicate gene names")
        self.fitness = fitness
        self.population = population
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.tournament = tournament
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.executor = executor
        # A genome whose evaluation fails (an EvalFailure from a resilient
        # executor) scores failure_fitness: worst-in-population, so it is
        # selected against but never crashes the generation.
        self.failure_fitness = failure_fitness
        self.surrogate = surrogate
        self.failures = 0

    def _raw_score(self, pop: list[Genome]) -> list:
        """The unscreened evaluation path (executor or direct)."""
        if self.executor is None:
            return [self.fitness(g) for g in pop]
        return list(self.executor.map_evaluate(self.fitness, pop))

    def _score(self, pop: list[Genome]) -> list[tuple[float, Genome]]:
        """Evaluate a population (batched through the executor hook)."""
        from repro.engine.faults import is_failure
        if self.surrogate is not None:
            raw = self.surrogate.screen(self._raw_score, pop)
        else:
            raw = self._raw_score(pop)
        fits: list[float] = []
        for f in raw:
            if is_failure(f):
                self.failures += 1
                fits.append(self.failure_fitness)
            else:
                fits.append(f)
        return sorted(zip(fits, pop), key=lambda t: t[0])

    def _random_genome(self) -> Genome:
        return {g.name: g.random(self.rng) for g in self.genes}

    def _crossover(self, a: Genome, b: Genome) -> Genome:
        return {g.name: (a if self.rng.random() < 0.5 else b)[g.name]
                for g in self.genes}

    def _mutate(self, genome: Genome) -> Genome:
        out = dict(genome)
        for g in self.genes:
            if self.rng.random() < self.mutation_rate:
                out[g.name] = g.mutate(out[g.name], self.rng)
        return out

    def _select(self, scored: list[tuple[float, Genome]]) -> Genome:
        picks = self.rng.integers(len(scored), size=self.tournament)
        best = min(picks, key=lambda i: scored[i][0])
        return scored[best][1]

    def run(self, generations: int = 50,
            target: float | None = None) -> GaResult:
        from repro.engine.trace import current_tracer
        tracer = current_tracer()
        self.failures = 0
        pop = [self._random_genome() for _ in range(self.population)]
        scored = self._score(pop)
        evaluations = len(pop)
        history = [scored[0][0]]
        gen = 0
        for gen in range(1, generations + 1):
            next_pop: list[Genome] = [g for _, g in scored[:self.elite]]
            while len(next_pop) < self.population:
                if self.rng.random() < self.crossover_rate:
                    child = self._crossover(self._select(scored),
                                            self._select(scored))
                else:
                    child = dict(self._select(scored))
                next_pop.append(self._mutate(child))
            scored = self._score(next_pop)
            evaluations += len(next_pop)
            history.append(scored[0][0])
            if tracer is not None:
                tracer.event("ga_generation", index=gen,
                             evaluations=evaluations,
                             best_fitness=scored[0][0],
                             failures=self.failures)
            if target is not None and scored[0][0] <= target:
                break
        best_fit, best = scored[0]
        if tracer is not None:
            tracer.event("ga_done", generations=gen, evaluations=evaluations,
                         best_fitness=best_fit, failures=self.failures)
        return GaResult(best, best_fit, gen, evaluations, history,
                        failures=self.failures)
