"""DONALD-style constraint ordering: declarative design equations → plan.

DONALD [Swings & Sansen, EDAC'91] lets a designer state analog design
knowledge as an unordered set of equations; the tool then *orders* them
into an executable evaluation plan for any choice of known quantities —
eliminating the hand-crafted design plans of IDAC/OASYS.

The classic algorithm, implemented here:

1. build the bipartite graph between equations and unknown variables;
2. find a maximum matching (which equation computes which unknown);
3. orient edges (matched pairs one way, uses the other) and condense the
   strongly connected components;
4. a topological sort of the condensation is the plan: singleton
   components are solved one equation / one unknown at a time, larger
   components form simultaneous blocks handed to a numeric solver.

Under-constrained systems (more unknowns than equations can cover) are
reported with the free variables — these are exactly the *design degrees
of freedom* the optimization-based tools then search over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx
import numpy as np
from scipy import optimize

Residual = Callable[[dict[str, float]], float]


@dataclass(frozen=True)
class Equation:
    """One residual equation f(values) = 0 over named variables."""

    name: str
    variables: frozenset[str]
    residual: Residual

    @staticmethod
    def make(name: str, variables, residual: Residual) -> "Equation":
        return Equation(name, frozenset(variables), residual)


class OrderingError(ValueError):
    """Raised for structurally unsolvable (over-constrained) systems."""


@dataclass
class UnderConstrained(Exception):
    """More unknowns than the equations can determine.

    ``free_variables`` lists a valid choice of variables that, when given
    values, make the rest solvable — DONALD's design degrees of freedom.
    """

    free_variables: list[str]

    def __str__(self) -> str:
        return ("system is under-constrained; free design variables: "
                + ", ".join(sorted(self.free_variables)))


@dataclass
class Block:
    """One plan step: ``len(equations)`` equations solving ``unknowns``."""

    equations: list[Equation]
    unknowns: list[str]

    @property
    def simultaneous(self) -> bool:
        return len(self.unknowns) > 1


@dataclass
class EvaluationPlan:
    """Ordered blocks; executing them yields all unknowns."""

    blocks: list[Block]
    knowns: list[str]
    unknowns: list[str]

    def block_sizes(self) -> list[int]:
        return [len(b.unknowns) for b in self.blocks]

    def solve(self, known_values: dict[str, float],
              guess: float | dict[str, float] = 1.0,
              solver_tol: float = 1e-10) -> dict[str, float]:
        """Execute the plan numerically.

        ``guess`` seeds the numeric solver (scalar applied to all unknowns,
        or a per-variable dict).
        """
        missing = set(self.knowns) - set(known_values)
        if missing:
            raise OrderingError(f"missing known values: {sorted(missing)}")
        values = dict(known_values)
        for block in self.blocks:
            self._solve_block(block, values, guess, solver_tol)
        return values

    def _solve_block(self, block: Block, values: dict[str, float],
                     guess, tol: float) -> None:
        def seed(var: str) -> float:
            if isinstance(guess, dict):
                return guess.get(var, 1.0)
            return float(guess)

        x0 = np.array([seed(v) for v in block.unknowns])

        def residuals(x: np.ndarray) -> np.ndarray:
            trial = dict(values)
            trial.update(zip(block.unknowns, x))
            return np.array([eq.residual(trial) for eq in block.equations])

        if len(block.unknowns) == 1:
            var = block.unknowns[0]
            f = lambda x: residuals(np.array([x]))[0]
            try:
                root = optimize.newton(f, x0[0], tol=tol, maxiter=100)
            except RuntimeError:
                root = _bracketed_root(f, x0[0])
            values[var] = float(root)
        else:
            sol, info, ier, msg = optimize.fsolve(
                residuals, x0, full_output=True, xtol=tol)
            if ier != 1:
                raise OrderingError(
                    f"simultaneous block {[e.name for e in block.equations]} "
                    f"failed to converge: {msg}")
            values.update(zip(block.unknowns, sol))


def _bracketed_root(f: Callable[[float], float], x0: float) -> float:
    """Geometric bracket expansion fallback for 1-D roots."""
    base = abs(x0) if x0 != 0 else 1.0
    for span in (2.0, 10.0, 100.0, 1e4, 1e8):
        lo, hi = x0 - span * base, x0 + span * base
        try:
            if f(lo) * f(hi) < 0:
                return optimize.brentq(f, lo, hi)
        except (ValueError, FloatingPointError, OverflowError):
            continue
    raise OrderingError(f"could not bracket a root near {x0}")


def order_equations(equations: list[Equation],
                    knowns: list[str]) -> EvaluationPlan:
    """Produce an evaluation plan computing every non-known variable.

    Raises :class:`UnderConstrained` (listing free variables) when the
    equations cannot determine all unknowns, and :class:`OrderingError`
    when some equations can never be used (over-constraint).
    """
    known_set = set(knowns)
    unknowns = sorted({v for eq in equations
                       for v in eq.variables} - known_set)
    eq_by_name = {eq.name: eq for eq in equations}
    if len(eq_by_name) != len(equations):
        raise OrderingError("duplicate equation names")

    graph = nx.Graph()
    graph.add_nodes_from((("eq", eq.name) for eq in equations), bipartite=0)
    graph.add_nodes_from((("var", v) for v in unknowns), bipartite=1)
    for eq in equations:
        for v in eq.variables - known_set:
            graph.add_edge(("eq", eq.name), ("var", v))

    eq_nodes = {("eq", eq.name) for eq in equations}
    matching = nx.bipartite.maximum_matching(graph, top_nodes=eq_nodes) \
        if graph.edges else {}
    matched_vars = {key[1]: matching[key][1]
                    for key in matching if key[0] == "var"}
    # matched_vars: variable -> equation that computes it
    unmatched_vars = [v for v in unknowns if v not in matched_vars]
    if unmatched_vars:
        raise UnderConstrained(unmatched_vars)
    matched_eqs = set(matched_vars.values())
    unused_eqs = [eq.name for eq in equations if eq.name not in matched_eqs]
    if unused_eqs:
        raise OrderingError(
            f"over-constrained: equations {unused_eqs} cannot be assigned "
            "an unknown to solve")

    # Directed dependency graph over equations: eq A -> eq B when B uses the
    # variable A computes.
    var_of_eq = {eq_name: var for var, eq_name in matched_vars.items()}
    dep = nx.DiGraph()
    dep.add_nodes_from(var_of_eq)
    for eq in equations:
        for v in eq.variables - known_set:
            producer = matched_vars[v]
            if producer != eq.name:
                dep.add_edge(producer, eq.name)

    blocks: list[Block] = []
    condensation = nx.condensation(dep)
    for scc_id in nx.topological_sort(condensation):
        members = sorted(condensation.nodes[scc_id]["members"])
        blocks.append(Block(
            equations=[eq_by_name[m] for m in members],
            unknowns=[var_of_eq[m] for m in members],
        ))
    return EvaluationPlan(blocks, sorted(known_set), unknowns)
