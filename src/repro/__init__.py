"""repro — analog and mixed-signal IC synthesis and layout toolkit.

A from-scratch Python reproduction of the tool landscape surveyed in
Carley, Gielen, Rutenbar & Sansen, *Synthesis Tools for Mixed-Signal ICs*
(DAC 1996): a circuit simulator, symbolic analysis, AWE, frontend circuit
synthesis (knowledge-based and optimization-based), topology selection,
analog cell layout (placement, routing, stacking, compaction) and
mixed-signal system assembly (floorplanning, noise-aware routing, power
grid synthesis).

Subpackages
-----------
``repro.core``       units and performance specifications
``repro.circuits``   netlists, devices, SPICE parser/writer, topologies
``repro.analysis``   DC/AC/transient/noise simulator and sensitivities
``repro.symbolic``   ISAAC-style symbolic small-signal analysis
``repro.awe``        asymptotic waveform evaluation
``repro.opt``        annealing, genetic search, intervals, equation ordering
``repro.engine``     parallel, cache-aware evaluation engine + job graphs
``repro.synthesis``  frontend: sizing, topology selection, manufacturability
``repro.layout``     backend cell level: generators, placer, router, compactor
``repro.msystem``    backend system level: floorplan, routing, power grids
``repro.flows``      closed-loop cell and chip design flows
"""

__version__ = "1.0.0"
