"""KOAN-style analog device placement by simulated annealing.

The placer arranges generated device (or stack) layouts with the moves
and objectives of KOAN [Cohn et al., JSSC'91]:

* translate / rotate / mirror / swap moves with temperature-scaled range;
* *enforced* symmetry — devices in a symmetry pair share one vertical
  axis; the slave's position and orientation are always the mirror of the
  master's, so every visited configuration is exactly symmetric (KOAN's
  symmetry groups);
* dynamic diffusion-merge reward — abutting devices whose facing
  diffusion edges carry the same net earn a bonus, which is how KOAN
  "discovers desirable optimizations to minimize parasitic capacitance
  during placement";
* cost = packed area + half-perimeter wirelength + overlap penalty.

After annealing, a constraint-graph legalization pass removes residual
overlaps while preserving relative order and re-centres symmetry pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.layout.constraints import ConstraintSet
from repro.layout.devicegen import DeviceLayout
from repro.layout.geometry import Cell, Orientation, Rect, bounding_box
from repro.layout.technology import DEFAULT_TECH, Technology
from repro.opt.anneal import Annealer, AnnealSchedule

_MIRROR = {
    Orientation.R0: Orientation.MY,
    Orientation.MY: Orientation.R0,
    Orientation.R180: Orientation.MX,
    Orientation.MX: Orientation.R180,
    Orientation.R90: Orientation.MY90,
    Orientation.MY90: Orientation.R90,
    Orientation.R270: Orientation.MX90,
    Orientation.MX90: Orientation.R270,
}


@dataclass
class PlacedObject:
    """One placeable layout with its transform."""

    layout: DeviceLayout
    x: int = 0
    y: int = 0
    orientation: Orientation = Orientation.R0

    def bbox(self) -> Rect:
        return self.layout.bbox().transformed(self.orientation,
                                              self.x, self.y)

    def port_position(self, port: str) -> tuple[int, int]:
        p = self.layout.cell.ports[port]
        r = p.rect.transformed(self.orientation, self.x, self.y)
        return r.center

    def transformed_cell(self) -> Cell:
        return self.layout.cell.transformed(self.orientation, self.x,
                                            self.y, self.layout.device_name)

    def copy(self) -> "PlacedObject":
        return PlacedObject(self.layout, self.x, self.y, self.orientation)


@dataclass
class Placement:
    """A full placement: objects by device name plus the symmetry axis."""

    objects: dict[str, PlacedObject]
    axis_x: int = 0

    def copy(self) -> "Placement":
        return Placement({k: o.copy() for k, o in self.objects.items()},
                         self.axis_x)

    def bbox(self) -> Rect:
        return bounding_box([o.bbox() for o in self.objects.values()])

    def cells(self) -> list[Cell]:
        return [o.transformed_cell() for o in self.objects.values()]


@dataclass
class PlacementResult:
    placement: Placement
    cost: float
    area: int
    wirelength: int
    merged_abutments: int
    evaluations: int


class KoanPlacer:
    """Annealing placement of device layouts under analog constraints."""

    def __init__(self, layouts: list[DeviceLayout],
                 constraints: ConstraintSet | None = None,
                 tech: Technology = DEFAULT_TECH,
                 wirelength_weight: float = 0.5,
                 overlap_weight: float = 30.0,
                 merge_bonus: float = 0.05,
                 seed: int = 1):
        if not layouts:
            raise ValueError("nothing to place")
        self.layouts = {lay.device_name: lay for lay in layouts}
        if len(self.layouts) != len(layouts):
            raise ValueError("duplicate device names in layouts")
        self.constraints = constraints or ConstraintSet()
        self.tech = tech
        self.wirelength_weight = wirelength_weight
        self.overlap_weight = overlap_weight
        self.merge_bonus = merge_bonus
        self.seed = seed
        self.total_area = sum(lay.bbox().area for lay in layouts)
        self.scale = int(math.sqrt(self.total_area)) or 1
        self._slave_of: dict[str, str] = {}
        for pair in self.constraints.symmetry_pairs:
            if (pair.device_a in self.layouts
                    and pair.device_b in self.layouts):
                self._slave_of[pair.device_b] = pair.device_a
        self._nets = self._collect_nets()
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _collect_nets(self) -> dict[str, list[tuple[str, str]]]:
        """net -> [(device, port)] over signal ports."""
        nets: dict[str, list[tuple[str, str]]] = {}
        for name, lay in self.layouts.items():
            for port, net in lay.port_nets.items():
                if port not in lay.cell.ports:
                    continue  # e.g. bulk without a physical port
                nets.setdefault(net, []).append((name, port))
        # Single-pin nets contribute nothing to wirelength.
        return {n: pins for n, pins in nets.items() if len(pins) > 1}

    # ------------------------------------------------------------------
    # cost
    # ------------------------------------------------------------------
    def _apply_symmetry(self, pl: Placement) -> None:
        for slave, master in self._slave_of.items():
            m = pl.objects[master]
            s = pl.objects[slave]
            # Mirror the master's bbox about the axis.
            m_box = m.bbox()
            s.orientation = _MIRROR[m.orientation]
            target_x1 = 2 * pl.axis_x - m_box.x2
            s_box_now = s.layout.bbox().transformed(s.orientation, 0, 0)
            s.x = target_x1 - s_box_now.x1
            s.y = m_box.y1 - s_box_now.y1

    def cost(self, pl: Placement) -> float:
        self.evaluations += 1
        self._apply_symmetry(pl)
        boxes = {name: o.bbox() for name, o in pl.objects.items()}
        area = bounding_box(list(boxes.values())).area
        overlap = 0
        names = list(boxes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                inter = boxes[a].intersection(boxes[b])
                if inter is not None:
                    overlap += inter.area
        wirelength = self._wirelength(pl)
        merges = self._abutment_merges(pl, boxes)
        return (area / self.total_area
                + self.wirelength_weight * wirelength / (4 * self.scale)
                + self.overlap_weight * overlap / self.total_area
                - self.merge_bonus * merges)

    def _wirelength(self, pl: Placement) -> int:
        total = 0
        for pins in self._nets.values():
            xs, ys = [], []
            for device, port in pins:
                x, y = pl.objects[device].port_position(port)
                xs.append(x)
                ys.append(y)
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    @staticmethod
    def _edge_nets(obj: PlacedObject) -> tuple[str | None, str | None]:
        """(left, right) diffusion nets of a placed object, accounting for
        orientations that mirror or rotate the x axis."""
        lay = obj.layout
        left, right = lay.left_net, lay.right_net
        o = obj.orientation
        if o in (Orientation.MY, Orientation.R180):
            return right, left
        if o.swaps_axes:
            return None, None  # vertical diffusion: no x-abutment
        return left, right

    def _abutment_merges(self, pl: Placement,
                         boxes: dict[str, Rect]) -> int:
        """Count adjacent device pairs whose facing diffusions share a net."""
        merges = 0
        names = list(boxes)
        near = 2 * self.tech.min_space_diff
        for i, a in enumerate(names):
            la = self.layouts[a]
            if la.kind != "mos":
                continue
            for b in names[i + 1:]:
                lb = self.layouts[b]
                if lb.kind != "mos":
                    continue
                box_a, box_b = boxes[a], boxes[b]
                if box_a.distance_to(box_b) > near:
                    continue
                # Vertical alignment required for diffusion abutment.
                y_overlap = (min(box_a.y2, box_b.y2)
                             - max(box_a.y1, box_b.y1))
                if y_overlap < min(box_a.height, box_b.height) // 2:
                    continue
                if box_a.x1 <= box_b.x1:
                    left_obj, right_obj = pl.objects[a], pl.objects[b]
                else:
                    left_obj, right_obj = pl.objects[b], pl.objects[a]
                _, left_facing = self._edge_nets(left_obj)
                right_facing, _ = self._edge_nets(right_obj)
                if left_facing is not None and left_facing == right_facing:
                    merges += 1
        return merges

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def _movable(self) -> list[str]:
        return [n for n in self.layouts if n not in self._slave_of]

    def propose(self, pl: Placement, rng: np.random.Generator,
                frac: float) -> Placement:
        movable = self._movable()
        kind = rng.random()
        span = max(int(self.scale * (0.1 + 0.9 * frac)), self.tech.L(2))
        if kind < 0.5:  # translate
            name = movable[rng.integers(len(movable))]
            obj = pl.objects[name]
            obj.x += int(rng.normal(0, span))
            obj.y += int(rng.normal(0, span))
        elif kind < 0.62:  # reorient
            name = movable[rng.integers(len(movable))]
            obj = pl.objects[name]
            choices = [Orientation.R0, Orientation.R180, Orientation.MY,
                       Orientation.MX]
            obj.orientation = choices[rng.integers(len(choices))]
        elif kind < 0.75 and len(movable) >= 2:  # swap
            i, j = rng.choice(len(movable), size=2, replace=False)
            a, b = pl.objects[movable[i]], pl.objects[movable[j]]
            a.x, b.x = b.x, a.x
            a.y, b.y = b.y, a.y
        elif kind < 0.88 and len(movable) >= 2:  # directed abut move
            self._abut_move(pl, movable, rng)
        else:  # move the symmetry axis
            pl.axis_x += int(rng.normal(0, span))
        return pl

    def _abut_move(self, pl: Placement, movable: list[str],
                   rng: np.random.Generator) -> None:
        """KOAN's merge move: snap a device flush against a compatible
        neighbour so their shared diffusion edges abut."""
        if self.merge_bonus <= 0:
            return  # ablated: no directed merging
        mos = [n for n in movable if self.layouts[n].kind == "mos"]
        if len(mos) < 2:
            return
        mover = mos[rng.integers(len(mos))]
        targets = [n for n in mos if n != mover]
        rng.shuffle(targets)
        gap = self.tech.min_space_diff
        for target in targets:
            t_obj = pl.objects[target]
            m_obj = pl.objects[mover]
            t_left, t_right = self._edge_nets(t_obj)
            m_left, m_right = self._edge_nets(m_obj)
            t_box = t_obj.bbox()
            m_box = m_obj.bbox()
            if t_right is not None and t_right == m_left:
                m_obj.x += (t_box.x2 + gap) - m_box.x1
                m_obj.y += t_box.y1 - m_box.y1
                return
            if t_left is not None and t_left == m_right:
                m_obj.x += (t_box.x1 - gap) - m_box.x2
                m_obj.y += t_box.y1 - m_box.y1
                return

    # ------------------------------------------------------------------
    def initial_placement(self, rng: np.random.Generator) -> Placement:
        """Row seeding: objects side by side, slaves mirrored."""
        objects: dict[str, PlacedObject] = {}
        x = 0
        for name in self._movable():
            lay = self.layouts[name]
            obj = PlacedObject(lay)
            box = lay.bbox()
            obj.x = x - box.x1
            obj.y = -box.y1
            x += box.width + self.tech.min_space_diff * 3
            objects[name] = obj
        for slave in self._slave_of:
            objects[slave] = PlacedObject(self.layouts[slave])
        pl = Placement(objects, axis_x=x // 2)
        self._apply_symmetry(pl)
        return pl

    def run(self, schedule: AnnealSchedule | None = None) -> PlacementResult:
        self.evaluations = 0
        rng = np.random.default_rng(self.seed)
        start = self.initial_placement(rng)
        schedule = schedule or AnnealSchedule(
            moves_per_temperature=220, cooling=0.92,
            max_evaluations=40000, stop_after_stale=10)
        annealer = Annealer(self.cost, self.propose, schedule=schedule,
                            copy_state=lambda p: p.copy(), seed=self.seed)
        result = annealer.run(start)
        best = result.best_state
        self._apply_symmetry(best)
        self._legalize(best)
        self._apply_symmetry(best)
        self._legalize_y_only(best)
        boxes = {n: o.bbox() for n, o in best.objects.items()}
        final_cost = self.cost(best)
        return PlacementResult(
            placement=best,
            cost=final_cost,
            area=best.bbox().area,
            wirelength=self._wirelength(best),
            merged_abutments=self._abutment_merges(best, boxes),
            evaluations=self.evaluations,
        )

    # ------------------------------------------------------------------
    # legalization
    # ------------------------------------------------------------------
    def _legalize(self, pl: Placement, max_rounds: int = 40) -> None:
        """Push overlapping objects apart along the smaller-overlap axis."""
        spacing = self.tech.min_space_diff
        for _ in range(max_rounds):
            moved = False
            names = list(pl.objects)
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    box_a = pl.objects[a].bbox()
                    box_b = pl.objects[b].bbox()
                    inter = box_a.intersection(box_b)
                    if inter is None:
                        continue
                    moved = True
                    dx = inter.width + spacing
                    dy = inter.height + spacing
                    mover = b if b not in self._slave_of else a
                    other = a if mover == b else b
                    obj = pl.objects[mover]
                    ref = pl.objects[other].bbox()
                    if dx <= dy:
                        direction = 1 if obj.bbox().center[0] >= \
                            ref.center[0] else -1
                        obj.x += direction * dx
                    else:
                        direction = 1 if obj.bbox().center[1] >= \
                            ref.center[1] else -1
                        obj.y += direction * dy
            if not moved:
                return

    def _legalize_y_only(self, pl: Placement, max_rounds: int = 40) -> None:
        """Resolve any overlap reintroduced by symmetry using y pushes
        (which preserve mirror symmetry about the vertical axis)."""
        spacing = self.tech.min_space_diff
        for _ in range(max_rounds):
            moved = False
            names = list(pl.objects)
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    box_a = pl.objects[a].bbox()
                    box_b = pl.objects[b].bbox()
                    inter = box_a.intersection(box_b)
                    if inter is None:
                        continue
                    moved = True
                    mover_name = b if b not in self._slave_of else a
                    obj = pl.objects[mover_name]
                    partner = self._partner(mover_name)
                    dy = inter.height + spacing
                    direction = 1 if box_b.center[1] >= box_a.center[1] \
                        else -1
                    obj.y += direction * dy
                    if partner is not None and partner in pl.objects:
                        pl.objects[partner].y += direction * dy
            if not moved:
                return

    def _partner(self, name: str) -> str | None:
        if name in self._slave_of:
            return self._slave_of[name]
        for slave, master in self._slave_of.items():
            if master == name:
                return slave
        return None


def has_overlaps(pl: Placement) -> bool:
    boxes = [o.bbox() for o in pl.objects.values()]
    for i, a in enumerate(boxes):
        for b in boxes[i + 1:]:
            if a.intersection(b) is not None:
                return True
    return False


def symmetry_error(pl: Placement, constraints: ConstraintSet) -> int:
    """Total Manhattan asymmetry of all pairs (0 for exact symmetry)."""
    err = 0
    for pair in constraints.symmetry_pairs:
        if (pair.device_a not in pl.objects
                or pair.device_b not in pl.objects):
            continue
        a = pl.objects[pair.device_a].bbox()
        b = pl.objects[pair.device_b].bbox()
        err += abs((a.x1 + a.x2 + b.x1 + b.x2) // 2 - 2 * pl.axis_x)
        err += abs(a.y1 - b.y1)
    return err
