"""Procedural cell-layout templates — the module-generation approach.

"The earliest approaches to custom analog cell layout relied on
procedural module generation ... a procedural generation scheme which
starts with a basic geometric template and completes it by correctly
sizing the devices and wires can be quite satisfactory" (§3.1, [32], the
Philips system [5]).

Each template positions the generated devices of a known topology in a
fixed geometric arrangement (rows, mirrored about the differential axis)
and returns a :class:`~repro.layout.placer.Placement` ready for routing.
The four styles double as the "manual" layouts of the Fig. 2 benchmark —
carefully structured, like a designer's plan — against which the KOAN
automatic placements are compared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Circuit
from repro.layout.constraints import ConstraintSet, extract_constraints
from repro.layout.devicegen import DeviceLayout, generate_device
from repro.layout.geometry import Orientation
from repro.layout.placer import PlacedObject, Placement
from repro.layout.technology import DEFAULT_TECH, Technology

STYLES = ("rows_classic", "rows_wide", "column_compact", "interleaved")


class TemplateError(ValueError):
    """Raised when a circuit does not fit the template's topology."""


@dataclass
class TemplateLayout:
    placement: Placement
    layouts: dict[str, DeviceLayout]
    constraints: ConstraintSet
    style: str


def procedural_cell_layout(circuit: Circuit, style: str = "rows_classic",
                           tech: Technology = DEFAULT_TECH,
                           fingers: int | None = None) -> TemplateLayout:
    """Template layout of an opamp-like cell.

    Devices are grouped into rows by function: symmetric pairs straddle
    the axis, mirror loads above, tail/bias devices below, remaining
    devices and passives in outer columns.  The ``style`` parameter
    varies row order, spacing and aspect — giving the four distinct
    "manual" layouts of Fig. 2.
    """
    if style not in STYLES:
        raise TemplateError(f"unknown style {style!r}; choose from {STYLES}")
    constraints = extract_constraints(circuit)
    layouts: dict[str, DeviceLayout] = {}
    for dev in circuit.devices:
        try:
            layouts[dev.name] = generate_device(dev, tech, fingers=fingers)
        except TypeError:
            continue  # sources etc. have no layout
    if not layouts:
        raise TemplateError("circuit has no layoutable devices")

    pair_names: list[tuple[str, str]] = [
        (p.device_a, p.device_b) for p in constraints.symmetry_pairs
        if p.device_a in layouts and p.device_b in layouts
    ]
    in_pairs = {n for ab in pair_names for n in ab}
    rest = [n for n in layouts if n not in in_pairs]

    spacing = {
        "rows_classic": 2 * tech.min_space_diff,
        "rows_wide": 6 * tech.min_space_diff,
        "column_compact": 2 * tech.min_space_diff,
        "interleaved": int(1.5 * tech.min_space_diff),
    }[style]

    objects: dict[str, PlacedObject] = {}
    axis_x = 0
    y = 0

    def place_pair(a: str, b: str, y0: int) -> int:
        la, lb = layouts[a], layouts[b]
        box_a = la.bbox()
        gap = spacing if style != "interleaved" else tech.min_space_diff
        obj_a = PlacedObject(la)
        obj_a.x = axis_x - gap // 2 - box_a.x2
        obj_a.y = y0 - box_a.y1
        obj_b = PlacedObject(lb, orientation=Orientation.MY)
        b_box = lb.bbox().transformed(Orientation.MY, 0, 0)
        obj_b.x = axis_x + gap // 2 - b_box.x1
        obj_b.y = y0 - b_box.y1
        objects[a] = obj_a
        objects[b] = obj_b
        return y0 + max(box_a.height, lb.bbox().height) + spacing

    # Rows of pairs about the axis.
    for a, b in pair_names:
        y = place_pair(a, b, y)

    # Remaining devices: stacked column (or row, per style).
    if style in ("rows_classic", "rows_wide", "interleaved"):
        for name in rest:
            lay = layouts[name]
            box = lay.bbox()
            obj = PlacedObject(lay)
            obj.x = axis_x - box.width // 2 - box.x1
            obj.y = y - box.y1
            objects[name] = obj
            y += box.height + spacing
    else:  # column_compact: two columns left/right of the axis
        side = -1
        y_left = y_right = y
        for name in rest:
            lay = layouts[name]
            box = lay.bbox()
            obj = PlacedObject(lay)
            if side < 0:
                obj.x = axis_x - spacing - box.x2
                obj.y = y_left - box.y1
                y_left += box.height + spacing
            else:
                obj.x = axis_x + spacing - box.x1
                obj.y = y_right - box.y1
                y_right += box.height + spacing
            objects[name] = obj
            side = -side

    placement = Placement(objects, axis_x=axis_x)
    return TemplateLayout(placement, layouts, constraints, style)


def template_report(template: TemplateLayout) -> dict[str, float]:
    """Area and aspect metrics for comparing template variants."""
    box = template.placement.bbox()
    device_area = sum(l.bbox().area for l in template.layouts.values())
    return {
        "area_um2": box.area / 1e6,
        "aspect": box.width / max(box.height, 1),
        "packing_efficiency": device_area / max(box.area, 1),
    }
