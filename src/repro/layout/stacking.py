"""MOS device stacking: diffusion-sharing chains for parasitic reduction.

"In the newest generation of CMOS analog cell layout tools, the device
placement task has been separated into two distinct phases: device
stacking, followed by stack placement" (§3.1).  A *stack* is a chain of
MOS devices whose adjacent source/drain diffusions merge, eliminating the
junction capacitance of the shared regions.

The theory: model each compatible device group as a multigraph whose
vertices are nets and whose edges are devices (source—drain); a stack is
a *trail* (edge-disjoint walk), and the minimum number of stacks covering
a connected component is ``max(1, odd_vertices/2)`` — Euler's condition.

Three engines:

* :func:`extract_stacks` — constructs one provably minimum trail
  partition in near-linear time (Hierholzer after odd-vertex pairing),
  the practical [45]-style fast extractor;
* :func:`enumerate_stackings` — exhaustive enumeration of *all* stack
  partitions ([43]'s exact formulation, exponential — benchmarked as
  claim C4);
* :func:`stack_junction_savings` — the objective both optimize: number of
  merged junctions.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.circuits.devices import Mosfet
from repro.circuits.netlist import Circuit


@dataclass
class Stack:
    """An ordered chain of devices with merged adjacent diffusions.

    ``nets`` has one more element than ``devices``: the diffusion net
    sequence along the chain.
    """

    devices: list[Mosfet]
    nets: list[str]

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def merged_junctions(self) -> int:
        return max(0, len(self.devices) - 1)

    def validate(self) -> None:
        if len(self.nets) != len(self.devices) + 1:
            raise ValueError("net chain length mismatch")
        for i, dev in enumerate(self.devices):
            ends = {dev.source, dev.drain}
            if {self.nets[i], self.nets[i + 1]} != ends:
                raise ValueError(
                    f"device {dev.name} does not connect "
                    f"{self.nets[i]}–{self.nets[i + 1]}")


@dataclass
class StackingResult:
    stacks: list[Stack]
    groups: int

    @property
    def stack_count(self) -> int:
        return len(self.stacks)

    @property
    def merged_junctions(self) -> int:
        return sum(s.merged_junctions for s in self.stacks)


def compatible_key(dev: Mosfet) -> tuple:
    """Devices may share diffusion when polarity, bulk and width match."""
    return (dev.model.polarity, dev.bulk, round(dev.w * dev.m * 1e9))


def group_devices(circuit: Circuit) -> dict[tuple, list[Mosfet]]:
    groups: dict[tuple, list[Mosfet]] = defaultdict(list)
    for dev in circuit.mosfets:
        groups[compatible_key(dev)].append(dev)
    return dict(groups)


def minimum_stack_count(devices: list[Mosfet]) -> int:
    """Lower bound on the number of stacks for one compatible group."""
    if not devices:
        return 0
    adjacency, degree = _graph(devices)
    seen: set[str] = set()
    total = 0
    for net in adjacency:
        if net in seen:
            continue
        component = _component(net, adjacency, seen)
        odd = sum(1 for v in component if degree[v] % 2 == 1)
        total += max(1, odd // 2)
    return total


def _graph(devices: list[Mosfet]):
    adjacency: dict[str, list[tuple[str, Mosfet]]] = defaultdict(list)
    degree: dict[str, int] = defaultdict(int)
    for dev in devices:
        adjacency[dev.source].append((dev.drain, dev))
        adjacency[dev.drain].append((dev.source, dev))
        degree[dev.source] += 1
        degree[dev.drain] += 1
    return adjacency, degree


def _component(start: str, adjacency, seen: set[str]) -> list[str]:
    stack_ = [start]
    out = []
    while stack_:
        v = stack_.pop()
        if v in seen:
            continue
        seen.add(v)
        out.append(v)
        for u, _ in adjacency[v]:
            if u not in seen:
                stack_.append(u)
    return out


def extract_stacks(circuit: Circuit) -> StackingResult:
    """Minimum trail partition per compatible group (fast, provably minimum).

    For each connected component the odd-degree vertices are paired; each
    pair bounds one trail.  A Hierholzer walk started from an odd vertex,
    splitting off trails whenever it revisits a completed circuit,
    achieves the odd/2 bound.
    """
    stacks: list[Stack] = []
    groups = group_devices(circuit)
    for devices in groups.values():
        stacks.extend(_partition_group(devices))
    result = StackingResult(stacks, groups=len(groups))
    for s in result.stacks:
        s.validate()
    return result


def _partition_group(devices: list[Mosfet]) -> list[Stack]:
    unused: dict[str, list[tuple[str, Mosfet]]] = defaultdict(list)
    degree: dict[str, int] = defaultdict(int)
    for dev in devices:
        unused[dev.source].append((dev.drain, dev))
        unused[dev.drain].append((dev.source, dev))
        degree[dev.source] += 1
        degree[dev.drain] += 1
    used: set[str] = set()
    stacks: list[Stack] = []

    def take_edge(v: str):
        bucket = unused[v]
        while bucket:
            u, dev = bucket[-1]
            if dev.name in used:
                bucket.pop()
                continue
            used.add(dev.name)
            bucket.pop()
            return u, dev
        return None

    def walk(start: str) -> Stack | None:
        nets = [start]
        chain: list[Mosfet] = []
        v = start
        while True:
            step = take_edge(v)
            if step is None:
                break
            u, dev = step
            chain.append(dev)
            nets.append(u)
            v = u
        if not chain:
            return None
        return Stack(chain, nets)

    # Trails must start at odd-degree vertices first.
    odd = [v for v in degree if degree[v] % 2 == 1]
    for v in odd:
        while True:
            trail = walk(v)
            if trail is None:
                break
            stacks.append(trail)
    # Remaining edges form Eulerian components: one circuit each.
    for dev in devices:
        if dev.name not in used:
            trail = walk(dev.source)
            if trail is not None:
                stacks.append(trail)
    return stacks


def enumerate_stackings(devices: list[Mosfet],
                        limit: int = 100000) -> list[list[Stack]]:
    """All distinct partitions of one group into stacks (exponential).

    This is the search space of the exact algorithm of [43]; ``limit``
    caps the enumeration so callers can measure growth without hanging.
    Partitions are pruned to those achieving the minimum stack count.
    """
    if not devices:
        return [[]]
    best = minimum_stack_count(devices)
    results: list[list[Stack]] = []

    def extend(remaining: tuple[int, ...], current: list[Stack]):
        if len(results) >= limit:
            return
        if not remaining:
            if len(current) == best:
                results.append([Stack(list(s.devices), list(s.nets))
                                for s in current])
            return
        if len(current) > best:
            return
        # Start a new trail from the lowest-index remaining device (both
        # orientations) to avoid counting permutations of trails.
        first = remaining[0]
        dev = devices[first]
        rest = remaining[1:]
        for nets in ((dev.source, dev.drain), (dev.drain, dev.source)):
            trail = Stack([dev], list(nets))
            grow(trail, rest, current)

    def grow(trail: Stack, remaining: tuple[int, ...],
             current: list[Stack]):
        if len(results) >= limit:
            return
        # Option 1: close the trail here, recurse on the rest.
        extend_with = current + [trail]
        extend(remaining, extend_with)
        # Option 2: extend the trail by any remaining device touching its
        # tail net.
        tail = trail.nets[-1]
        for k, idx in enumerate(remaining):
            dev = devices[idx]
            if tail == dev.source:
                nxt = dev.drain
            elif tail == dev.drain:
                nxt = dev.source
            else:
                continue
            new_trail = Stack(trail.devices + [dev], trail.nets + [nxt])
            grow(new_trail, remaining[:k] + remaining[k + 1:], current)

    extend(tuple(range(len(devices))), [])
    return results


def stack_junction_savings(result: StackingResult,
                           circuit: Circuit) -> float:
    """Fraction of inter-device junctions eliminated by stacking."""
    n_devices = len(circuit.mosfets)
    if n_devices <= 1:
        return 0.0
    max_merges = n_devices - result.groups
    if max_merges <= 0:
        return 0.0
    return result.merged_junctions / max_merges
