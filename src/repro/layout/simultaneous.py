"""Simultaneous device place-and-route [Cohn et al., ICCAD'91].

"A more radical alternative is simultaneous device place-and-route.  An
experimental version of KOAN supported this by iteratively perturbing
both the wires and the devices" (§3.1, [50]) — the proposed cure for the
*wirespace problem* (guessing how much room to leave for wires before
routing exists).

The implementation follows the experimental tool's loop: a placement
perturbation is evaluated by actually routing it, and acceptance is
decided on the *routed* cost (area of the routed bounding box + total
wire length + wire capacitance + failure penalties) under a small
annealing schedule.  Expensive per move — exactly why it stayed
experimental — but it removes the wirespace guess entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.layout.constraints import ConstraintSet
from repro.layout.devicegen import DeviceLayout
from repro.layout.geometry import bounding_box
from repro.layout.parasitics import extract_parasitics
from repro.layout.placer import KoanPlacer, Placement
from repro.layout.router import RoutingRequest, route_placement
from repro.layout.technology import DEFAULT_TECH, Technology


@dataclass
class RoutedPlacementResult:
    placement: Placement
    routing: object
    router: object
    cost: float
    routed_area: int
    wire_length: int
    wire_cap: float
    rounds: int
    improved_rounds: int


class SimultaneousPlaceRoute:
    """Iterative co-optimization of placement and routing."""

    def __init__(self, layouts: list[DeviceLayout],
                 constraints: ConstraintSet | None = None,
                 sensitive_nets: tuple[str, ...] = (),
                 tech: Technology = DEFAULT_TECH,
                 seed: int = 1,
                 wirelength_weight: float = 0.4,
                 cap_weight: float = 5e13):
        self.placer = KoanPlacer(layouts, constraints, tech=tech,
                                 seed=seed)
        self.constraints = self.placer.constraints
        self.sensitive_nets = sensitive_nets
        self.tech = tech
        self.seed = seed
        self.wirelength_weight = wirelength_weight
        self.cap_weight = cap_weight

    # ------------------------------------------------------------------
    def _requests(self, placement: Placement) -> list[RoutingRequest]:
        nets: dict[str, list] = {}
        for name, obj in placement.objects.items():
            lay = self.placer.layouts[name]
            for port, net in lay.port_nets.items():
                if port in lay.cell.ports:
                    x, y = obj.port_position(port)
                    nets.setdefault(net, []).append(
                        (x, y, lay.cell.ports[port].layer))
        return [
            RoutingRequest(net, pins,
                           "sensitive" if net in self.sensitive_nets
                           else "neutral")
            for net, pins in nets.items() if len(pins) > 1
        ]

    def routed_cost(self, placement: Placement):
        """Route the placement and score the *routed* layout."""
        self.placer._apply_symmetry(placement)
        self.placer._legalize(placement)
        self.placer._apply_symmetry(placement)
        self.placer._legalize_y_only(placement)
        requests = self._requests(placement)
        routing, router = route_placement(placement, requests,
                                          self.constraints.net_pairs,
                                          tech=self.tech)
        rects = [o.bbox() for o in placement.objects.values()]
        for wire in routing.wires.values():
            for shape in wire.shapes(self.tech, self.tech.min_width_metal):
                rects.append(shape.rect)
        routed_area = bounding_box(rects).area if rects else 0
        extraction = extract_parasitics(routing, router, self.tech)
        wire_cap = extraction.total_wire_cap()
        cost = (routed_area / self.placer.total_area
                + self.wirelength_weight * routing.total_length
                / (4 * self.placer.scale)
                + self.cap_weight * wire_cap
                + 10.0 * len(routing.failed))
        return cost, routing, router, routed_area, wire_cap

    # ------------------------------------------------------------------
    def run(self, rounds: int = 25,
            temperature: float = 0.3) -> RoutedPlacementResult:
        """The [50] loop: perturb devices, reroute, accept on routed cost."""
        rng = np.random.default_rng(self.seed)
        current = self.placer.initial_placement(rng)
        (current_cost, routing, router,
         area, cap) = self.routed_cost(current)
        best = current.copy()
        best_pack = (current_cost, routing, router, area,
                     routing.total_length, cap)
        improved = 0
        t = temperature
        for round_no in range(rounds):
            trial = current.copy()
            frac = 1.0 - round_no / max(rounds - 1, 1)
            self.placer.propose(trial, rng, frac)
            (trial_cost, t_routing, t_router,
             t_area, t_cap) = self.routed_cost(trial)
            delta = trial_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(t, 1e-9)):
                current, current_cost = trial, trial_cost
                if trial_cost < best_pack[0]:
                    best = trial.copy()
                    best_pack = (trial_cost, t_routing, t_router, t_area,
                                 t_routing.total_length, t_cap)
                    improved += 1
            t *= 0.9
        cost, routing, router, area, length, cap = best_pack
        return RoutedPlacementResult(
            placement=best, routing=routing, router=router, cost=cost,
            routed_area=area, wire_length=length, wire_cap=cap,
            rounds=rounds, improved_rounds=improved)
