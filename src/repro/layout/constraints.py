"""Symmetry and matching constraint extraction from the schematic.

[Charbon, Malavasi & Sangiovanni-Vincentelli, ICCAD'93] showed how
constraints on symmetry and matching can be extracted *directly from the
device schematic* instead of being hand-annotated.  This module
implements the recognizers the analog placer and router consume:

* differential pairs — two same-type devices sharing a source net whose
  gates carry a differential signal → symmetric placement + matched
  layout + symmetric routing of the gate/drain nets;
* current mirrors — devices sharing a gate net where one is
  diode-connected → matched layout, common orientation;
* matched passives — equal-value resistor/capacitor pairs on
  symmetric nets.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.circuits.devices import Capacitor, Mosfet, Resistor
from repro.circuits.netlist import Circuit


@dataclass(frozen=True)
class SymmetryPair:
    """Two devices to be placed mirror-symmetrically about a common axis."""

    device_a: str
    device_b: str
    reason: str


@dataclass(frozen=True)
class MatchGroup:
    """Devices needing identical geometry and orientation."""

    devices: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class NetPair:
    """Two nets to be routed as mirrored twins (differential signals)."""

    net_a: str
    net_b: str


@dataclass
class ConstraintSet:
    symmetry_pairs: list[SymmetryPair] = field(default_factory=list)
    match_groups: list[MatchGroup] = field(default_factory=list)
    net_pairs: list[NetPair] = field(default_factory=list)

    def symmetric_devices(self) -> set[str]:
        out = set()
        for pair in self.symmetry_pairs:
            out.add(pair.device_a)
            out.add(pair.device_b)
        return out

    def partner_of(self, device: str) -> str | None:
        for pair in self.symmetry_pairs:
            if pair.device_a == device:
                return pair.device_b
            if pair.device_b == device:
                return pair.device_a
        return None


def extract_constraints(circuit: Circuit) -> ConstraintSet:
    """Recognize diff pairs, mirrors and matched passives in a netlist."""
    cs = ConstraintSet()
    mosfets = circuit.mosfets
    _find_differential_pairs(mosfets, cs)
    _find_current_mirrors(mosfets, cs)
    _find_matched_passives(circuit, cs)
    return cs


def _find_differential_pairs(mosfets: list[Mosfet],
                             cs: ConstraintSet) -> None:
    by_source: dict[tuple, list[Mosfet]] = defaultdict(list)
    for dev in mosfets:
        by_source[(dev.source, dev.model.polarity)].append(dev)
    for (source, _), devices in by_source.items():
        if len(devices) != 2:
            continue
        a, b = devices
        same_size = (abs(a.w - b.w) < 1e-12 and abs(a.l - b.l) < 1e-12
                     and a.m == b.m)
        distinct_gates = a.gate != b.gate
        if same_size and distinct_gates:
            cs.symmetry_pairs.append(SymmetryPair(
                a.name, b.name, f"differential pair at source {source!r}"))
            cs.match_groups.append(MatchGroup(
                (a.name, b.name), "differential pair"))
            cs.net_pairs.append(NetPair(a.gate, b.gate))
            if a.drain != b.drain:
                cs.net_pairs.append(NetPair(a.drain, b.drain))


def _find_current_mirrors(mosfets: list[Mosfet], cs: ConstraintSet) -> None:
    by_gate: dict[tuple, list[Mosfet]] = defaultdict(list)
    for dev in mosfets:
        by_gate[(dev.gate, dev.model.polarity, dev.source)].append(dev)
    already = {frozenset((p.device_a, p.device_b))
               for p in cs.symmetry_pairs}
    for (gate, _, _), devices in by_gate.items():
        if len(devices) < 2:
            continue
        diode = [d for d in devices if d.drain == d.gate]
        if not diode:
            continue
        names = tuple(sorted(d.name for d in devices))
        cs.match_groups.append(MatchGroup(
            names, f"current mirror on gate {gate!r}"))
        # Mirror outputs with equal sizes get symmetric placement too.
        outputs = [d for d in devices if d.drain != d.gate]
        if len(outputs) == 2:
            a, b = outputs
            key = frozenset((a.name, b.name))
            if (abs(a.w - b.w) < 1e-12 and key not in already):
                cs.symmetry_pairs.append(SymmetryPair(
                    a.name, b.name, f"mirror outputs on gate {gate!r}"))


def _find_matched_passives(circuit: Circuit, cs: ConstraintSet) -> None:
    values: dict[tuple, list] = defaultdict(list)
    for dev in circuit.devices:
        if isinstance(dev, (Resistor, Capacitor)):
            values[(type(dev).__name__, dev.value)].append(dev)
    for (_, _), devices in values.items():
        if len(devices) == 2:
            cs.match_groups.append(MatchGroup(
                tuple(sorted(d.name for d in devices)),
                "equal-value passive pair"))
