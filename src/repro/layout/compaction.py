"""Constraint-graph layout compaction with symmetry constraints.

The classic 1-D compactor [48, 49]: objects become graph nodes, minimum
spacing between objects that overlap in the orthogonal projection becomes
a weighted edge, and the longest path from the source assigns each object
its smallest legal coordinate.  Symmetric pairs are kept symmetric by
compacting the master set and reflecting slaves — the "symbolic
compaction with analog constraints" of [49] in its simplest faithful
form.

Used by the cell flow after placement ("leave extra space during device
placement and then compact", §3.1) and testable standalone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.constraints import ConstraintSet
from repro.layout.geometry import Rect
from repro.layout.placer import Placement
from repro.layout.technology import DEFAULT_TECH, Technology


@dataclass
class CompactionReport:
    area_before: int
    area_after: int

    @property
    def area_ratio(self) -> float:
        if self.area_before == 0:
            return 1.0
        return self.area_after / self.area_before


def _longest_path_positions(names: list[str], boxes: dict[str, Rect],
                            axis: str, spacing: int) -> dict[str, int]:
    """Minimal coordinates along ``axis`` respecting pairwise spacing.

    Constraint edge a→b exists when a is left of (below) b and their
    orthogonal projections overlap; then pos_b >= pos_a + size_a + spacing.
    The DAG longest path gives minimal legal positions.
    """
    if axis == "x":
        lo = {n: boxes[n].x1 for n in names}
        size = {n: boxes[n].width for n in names}

        def overlaps(a: str, b: str) -> bool:
            return (boxes[a].y1 < boxes[b].y2
                    and boxes[b].y1 < boxes[a].y2)
    else:
        lo = {n: boxes[n].y1 for n in names}
        size = {n: boxes[n].height for n in names}

        def overlaps(a: str, b: str) -> bool:
            return (boxes[a].x1 < boxes[b].x2
                    and boxes[b].x1 < boxes[a].x2)

    order = sorted(names, key=lambda n: lo[n])
    position = {n: 0 for n in order}
    for i, b in enumerate(order):
        for a in order[:i]:
            if overlaps(a, b) and lo[a] <= lo[b]:
                required = position[a] + size[a] + spacing
                if required > position[b]:
                    position[b] = required
    return position


def compact_placement(placement: Placement,
                      constraints: ConstraintSet | None = None,
                      tech: Technology = DEFAULT_TECH,
                      spacing: int | None = None) -> CompactionReport:
    """Compact a placement in x then y, preserving symmetry pairs.

    Mutates the placement in place and returns before/after areas.
    """
    constraints = constraints or ConstraintSet()
    spacing = spacing if spacing is not None else tech.min_space_diff
    area_before = placement.bbox().area

    slave_of = {}
    for pair in constraints.symmetry_pairs:
        if (pair.device_a in placement.objects
                and pair.device_b in placement.objects):
            slave_of[pair.device_b] = pair.device_a

    # ---- x direction: compact the left half-plane masters + free objects,
    # reflect slaves afterwards.
    names = [n for n in placement.objects if n not in slave_of]
    boxes = {n: placement.objects[n].bbox() for n in names}
    new_x = _longest_path_positions(names, boxes, "x", spacing)
    for n in names:
        obj = placement.objects[n]
        obj.x += new_x[n] - boxes[n].x1
    # Recompute the axis as the centroid of masters with slaves.
    masters_with_slaves = set(slave_of.values())
    if masters_with_slaves:
        rightmost = max(placement.objects[m].bbox().x2
                        for m in masters_with_slaves)
        placement.axis_x = rightmost + spacing
    for slave, master in slave_of.items():
        m_box = placement.objects[master].bbox()
        s = placement.objects[slave]
        s_box = s.bbox()
        target_x1 = 2 * placement.axis_x - m_box.x2
        s.x += target_x1 - s_box.x1
        s.y += m_box.y1 - s_box.y1

    # ---- y direction: move pairs together so symmetry survives.
    groups: dict[str, list[str]] = {}
    for n in placement.objects:
        master = slave_of.get(n, n)
        groups.setdefault(master, []).append(n)
    group_names = list(groups)
    group_boxes = {}
    for g, members in groups.items():
        box = placement.objects[members[0]].bbox()
        for m in members[1:]:
            box = box.union(placement.objects[m].bbox())
        group_boxes[g] = box
    new_y = _longest_path_positions(group_names, group_boxes, "y", spacing)
    for g, members in groups.items():
        dy = new_y[g] - group_boxes[g].y1
        for m in members:
            placement.objects[m].y += dy

    return CompactionReport(area_before, placement.bbox().area)
