"""Layout parasitic extraction and back-annotation.

Closes the backend loop of §2.1/§3.1: after placement and routing the
wires are measured, their resistance/ground-capacitance/coupling are
computed from the technology coefficients, and a *parasitic-annotated
copy of the circuit* is produced for detailed verification — the
"detailed design verification (after extraction)" step of the
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.devices import Capacitor
from repro.circuits.netlist import Circuit
from repro.layout.router import RoutingResult
from repro.layout.technology import DEFAULT_TECH, Technology


@dataclass
class NetParasitics:
    net: str
    length_nm: int
    resistance: float        # lumped wire resistance (Ohm)
    cap_ground: float        # wire capacitance to substrate (F)
    coupling: dict[str, float] = field(default_factory=dict)  # net -> F

    @property
    def cap_total(self) -> float:
        return self.cap_ground + sum(self.coupling.values())


@dataclass
class ExtractionResult:
    nets: dict[str, NetParasitics]

    def total_wire_cap(self) -> float:
        return sum(n.cap_ground for n in self.nets.values())

    def coupling_between(self, net_a: str, net_b: str) -> float:
        a = self.nets.get(net_a)
        if a is None:
            return 0.0
        return a.coupling.get(net_b, 0.0)

    def worst_coupled_pair(self) -> tuple[str, str, float]:
        worst = ("", "", 0.0)
        for net, para in self.nets.items():
            for other, cap in para.coupling.items():
                if cap > worst[2]:
                    worst = (net, other, cap)
        return worst


def extract_parasitics(result: RoutingResult, router,
                       tech: Technology = DEFAULT_TECH) -> ExtractionResult:
    """Measure every routed net: R, C-to-ground and coupling caps.

    Coupling is computed from parallel adjacent grid-cell runs — two nets
    occupying laterally adjacent cells on the same layer couple by
    ``coupling_cap`` per unit length (the ANAGRAM II crosstalk model made
    quantitative).
    """
    nets: dict[str, NetParasitics] = {}
    width = tech.min_width_metal
    for net, wire in result.wires.items():
        resistance = tech.wire_resistance("metal1", wire.length_nm, width) \
            if wire.length_nm else 0.0
        cap = tech.wire_capacitance(wire.length_nm, width)
        nets[net] = NetParasitics(net, wire.length_nm, resistance, cap)

    # Coupling: scan the occupancy grids for adjacent different-net cells.
    pitch = router.pitch
    per_cell = tech.coupling_capacitance(pitch)
    for layer in (0, 1):
        occ = router.occupancy[layer]
        for (ix, iy), (net, _) in occ.items():
            for dx, dy in ((1, 0), (0, 1)):
                other = occ.get((ix + dx, iy + dy))
                if other is None or other[0] == net:
                    continue
                other_net = other[0]
                if net in nets and other_net in nets:
                    a, b = nets[net], nets[other_net]
                    a.coupling[other_net] = a.coupling.get(other_net,
                                                           0.0) + per_cell
                    b.coupling[net] = b.coupling.get(net, 0.0) + per_cell
    return ExtractionResult(nets)


def annotate_circuit(circuit: Circuit, extraction: ExtractionResult,
                     min_cap: float = 1e-18) -> Circuit:
    """Return a copy of the circuit with extracted parasitics added.

    Ground capacitance per net plus explicit coupling capacitors between
    net pairs; series wire resistance is folded into the ground-cap node
    (lumped single-π would require net splitting — the C dominates at
    cell level, matching what the 1990s extractors back-annotated).
    """
    out = circuit.copy()
    counter = 0
    for net, para in extraction.nets.items():
        if net == "0":
            continue
        if para.cap_ground >= min_cap:
            counter += 1
            out.add(Capacitor(f"cpar_{counter}_{net}", (net, "0"),
                              para.cap_ground))
    seen: set[frozenset] = set()
    for net, para in extraction.nets.items():
        for other, cap in para.coupling.items():
            key = frozenset((net, other))
            if key in seen or cap < min_cap:
                continue
            seen.add(key)
            counter += 1
            out.add(Capacitor(f"ccpl_{counter}", (net, other), cap))
    return out
