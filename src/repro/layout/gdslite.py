"""Layout export: binary GDSII stream writer plus a readable text dump.

The GDSII writer emits genuine stream-format records (HEADER/BGNLIB/
BGNSTR/BOUNDARY/...) so the cells this toolkit produces open in any layout
viewer; the text format is for diffing and tests.  Only BOUNDARY records
are needed — every shape in this backend is a rectangle.
"""

from __future__ import annotations

import struct

from repro.layout.geometry import Cell
from repro.layout.technology import GDS_LAYER_NUMBERS

# GDSII record types.
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_ENDLIB = 0x0400
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100

_FIXED_TIME = (1996, 6, 3, 12, 0, 0)  # DAC'96 week; deterministic output


def _record(rec_type: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HH", length, rec_type) + payload


def _int16s(values) -> bytes:
    return b"".join(struct.pack(">h", v) for v in values)


def _int32s(values) -> bytes:
    return b"".join(struct.pack(">i", v) for v in values)


def _gds_double(value: float) -> bytes:
    """Encode an 8-byte GDSII excess-64 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return bytes([sign | exponent]) + mantissa.to_bytes(7, "big")


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\x00"
    return data


def _timestamp() -> bytes:
    y, mo, d, h, mi, s = _FIXED_TIME
    stamp = _int16s([y, mo, d, h, mi, s])
    return stamp + stamp  # modification + access


def write_gds(cells: list[Cell], library: str = "repro") -> bytes:
    """Serialize cells to a GDSII stream (1 nm database unit)."""
    out = bytearray()
    out += _record(_HEADER, _int16s([600]))
    out += _record(_BGNLIB, _timestamp())
    out += _record(_LIBNAME, _ascii(library))
    # User unit = 1 µm, database unit = 1 nm.
    out += _record(_UNITS, _gds_double(1e-3) + _gds_double(1e-9))
    for cell in cells:
        out += _record(_BGNSTR, _timestamp())
        out += _record(_STRNAME, _ascii(_sanitize(cell.name)))
        for shape in cell.shapes:
            layer_no = GDS_LAYER_NUMBERS.get(shape.layer)
            if layer_no is None:
                continue
            out += _record(_BOUNDARY)
            out += _record(_LAYER, _int16s([layer_no]))
            out += _record(_DATATYPE, _int16s([0]))
            r = shape.rect
            pts = [r.x1, r.y1, r.x2, r.y1, r.x2, r.y2, r.x1, r.y2,
                   r.x1, r.y1]
            out += _record(_XY, _int32s(pts))
            out += _record(_ENDEL)
        out += _record(_ENDSTR)
    out += _record(_ENDLIB)
    return bytes(out)


def _sanitize(name: str) -> str:
    allowed = "ABCDEFGHIJKLMNOPQRSTUVWXYZ" \
              "abcdefghijklmnopqrstuvwxyz0123456789_?$"
    return "".join(ch if ch in allowed else "_" for ch in name)[:32] or "CELL"


def save_gds(cells: list[Cell], path: str, library: str = "repro") -> None:
    with open(path, "wb") as f:
        f.write(write_gds(cells, library))


def read_gds_cell_names(data: bytes) -> list[str]:
    """Parse structure names back out of a GDSII stream (round-trip check)."""
    names = []
    pos = 0
    while pos + 4 <= len(data):
        length, rec_type = struct.unpack(">HH", data[pos:pos + 4])
        if length < 4:
            break
        if rec_type == _STRNAME:
            raw = data[pos + 4:pos + length]
            names.append(raw.rstrip(b"\x00").decode("ascii"))
        pos += length
    return names


def read_gds_rect_count(data: bytes) -> int:
    count = 0
    pos = 0
    while pos + 4 <= len(data):
        length, rec_type = struct.unpack(">HH", data[pos:pos + 4])
        if length < 4:
            break
        if rec_type == _BOUNDARY:
            count += 1
        pos += length
    return count


def cell_to_text(cell: Cell) -> str:
    """Human-readable layout dump (sorted; stable for golden tests)."""
    lines = [f"cell {cell.name}"]
    for shape in sorted(cell.shapes,
                        key=lambda s: (s.layer, s.rect.x1, s.rect.y1,
                                       s.rect.x2, s.rect.y2)):
        r = shape.rect
        net = f" net={shape.net}" if shape.net else ""
        lines.append(f"  rect {shape.layer} {r.x1} {r.y1} {r.x2} {r.y2}{net}")
    for port in sorted(cell.ports.values(), key=lambda p: p.name):
        r = port.rect
        lines.append(
            f"  port {port.name} {port.layer} {r.x1} {r.y1} {r.x2} {r.y2}")
    return "\n".join(lines)
