"""Layout geometry kernel: integer rectangles, transforms, cells.

All coordinates are integers in *nanometres* — the standard trick that
keeps layout code free of floating-point comparisons.  Orientations are
the eight elements of the rectangle symmetry group (four rotations ×
optional mirror), matching GDSII/LEF conventions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

NM_PER_UM = 1000


def um(value: float) -> int:
    """Convert microns to integer nanometres."""
    return int(round(value * NM_PER_UM))


class Orientation(enum.Enum):
    """The eight layout orientations (rotation then optional x-mirror)."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"        # mirror about the x-axis (flip y)
    MY = "MY"        # mirror about the y-axis (flip x)
    MX90 = "MX90"
    MY90 = "MY90"

    def compose_point(self, x: int, y: int) -> tuple[int, int]:
        if self is Orientation.R0:
            return x, y
        if self is Orientation.R90:
            return -y, x
        if self is Orientation.R180:
            return -x, -y
        if self is Orientation.R270:
            return y, -x
        if self is Orientation.MX:
            return x, -y
        if self is Orientation.MY:
            return -x, y
        if self is Orientation.MX90:
            return y, x
        return -y, -x  # MY90

    @property
    def swaps_axes(self) -> bool:
        return self in (Orientation.R90, Orientation.R270,
                        Orientation.MX90, Orientation.MY90)


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle [x1, x2) × [y1, y2); always normalized."""

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self):
        if self.x1 > self.x2 or self.y1 > self.y2:
            object.__setattr__(self, "x1", min(self.x1, self.x2))
            object.__setattr__(self, "x2", max(self.x1, self.x2))
            object.__setattr__(self, "y1", min(self.y1, self.y2))
            object.__setattr__(self, "y2", max(self.y1, self.y2))

    @staticmethod
    def of(x1: int, y1: int, x2: int, y2: int) -> "Rect":
        return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))

    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> tuple[int, int]:
        return (self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2

    def moved(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def expanded(self, margin: int) -> "Rect":
        return Rect(self.x1 - margin, self.y1 - margin,
                    self.x2 + margin, self.y2 + margin)

    def intersects(self, other: "Rect") -> bool:
        return (self.x1 < other.x2 and other.x1 < self.x2
                and self.y1 < other.y2 and other.y1 < self.y2)

    def intersection(self, other: "Rect") -> "Rect | None":
        x1, y1 = max(self.x1, other.x1), max(self.y1, other.y1)
        x2, y2 = min(self.x2, other.x2), min(self.y2, other.y2)
        if x1 >= x2 or y1 >= y2:
            return None
        return Rect(x1, y1, x2, y2)

    def contains_point(self, x: int, y: int) -> bool:
        return self.x1 <= x < self.x2 and self.y1 <= y < self.y2

    def union(self, other: "Rect") -> "Rect":
        return Rect(min(self.x1, other.x1), min(self.y1, other.y1),
                    max(self.x2, other.x2), max(self.y2, other.y2))

    def transformed(self, orientation: Orientation,
                    dx: int = 0, dy: int = 0) -> "Rect":
        ax, ay = orientation.compose_point(self.x1, self.y1)
        bx, by = orientation.compose_point(self.x2, self.y2)
        return Rect.of(ax + dx, ay + dy, bx + dx, by + dy)

    def distance_to(self, other: "Rect") -> int:
        """Manhattan gap between rectangles (0 when touching/overlapping)."""
        dx = max(other.x1 - self.x2, self.x1 - other.x2, 0)
        dy = max(other.y1 - self.y2, self.y1 - other.y2, 0)
        return dx + dy


@dataclass(frozen=True)
class Shape:
    """A rectangle on a named layer, optionally tagged with a net."""

    layer: str
    rect: Rect
    net: str | None = None

    def transformed(self, orientation: Orientation, dx: int,
                    dy: int) -> "Shape":
        return Shape(self.layer, self.rect.transformed(orientation, dx, dy),
                     self.net)


@dataclass(frozen=True)
class Port:
    """A named connection point: a landing rectangle on a layer."""

    name: str
    layer: str
    rect: Rect
    net: str | None = None

    @property
    def position(self) -> tuple[int, int]:
        return self.rect.center

    def transformed(self, orientation: Orientation, dx: int,
                    dy: int) -> "Port":
        return Port(self.name, self.layer,
                    self.rect.transformed(orientation, dx, dy), self.net)


@dataclass
class Cell:
    """A layout cell: shapes plus named ports (flat; no sub-instances)."""

    name: str
    shapes: list[Shape] = field(default_factory=list)
    ports: dict[str, Port] = field(default_factory=dict)

    def add_shape(self, layer: str, rect: Rect,
                  net: str | None = None) -> Shape:
        shape = Shape(layer, rect, net)
        self.shapes.append(shape)
        return shape

    def add_port(self, name: str, layer: str, rect: Rect,
                 net: str | None = None) -> Port:
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r} in cell {self.name!r}")
        port = Port(name, layer, rect, net)
        self.ports[name] = port
        return port

    def bbox(self) -> Rect:
        if not self.shapes:
            return Rect(0, 0, 0, 0)
        box = self.shapes[0].rect
        for shape in self.shapes[1:]:
            box = box.union(shape.rect)
        return box

    def shapes_on(self, layer: str) -> list[Shape]:
        return [s for s in self.shapes if s.layer == layer]

    def transformed(self, orientation: Orientation, dx: int,
                    dy: int, name: str | None = None) -> "Cell":
        out = Cell(name or self.name)
        out.shapes = [s.transformed(orientation, dx, dy)
                      for s in self.shapes]
        out.ports = {
            p.name: p.transformed(orientation, dx, dy)
            for p in self.ports.values()
        }
        return out

    def merge(self, other: "Cell", prefix: str = "") -> None:
        """Copy another cell's shapes and ports into this one."""
        self.shapes.extend(other.shapes)
        for port in other.ports.values():
            renamed = replace(port, name=prefix + port.name)
            if renamed.name in self.ports:
                raise ValueError(f"port clash {renamed.name!r}")
            self.ports[renamed.name] = renamed


def total_area(cells: list[Cell]) -> int:
    return sum(c.bbox().area for c in cells)


def bounding_box(rects: list[Rect]) -> Rect:
    if not rects:
        return Rect(0, 0, 0, 0)
    box = rects[0]
    for r in rects[1:]:
        box = box.union(r)
    return box
