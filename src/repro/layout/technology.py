"""Synthetic scalable CMOS technology: layers, design rules, parasitics.

A λ-based rule set in the MOSIS tradition, instantiated for the 0.8 µm
process the circuit models assume (λ = 0.4 µm).  The layout tools only
read rules through this object, so the whole backend rescales with one
number — the property that made procedural generators portable across
processes in the early systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.geometry import um

# Canonical layer names used by every generator/tool in the backend.
LAYER_NDIFF = "ndiff"
LAYER_PDIFF = "pdiff"
LAYER_POLY = "poly"
LAYER_CONTACT = "contact"
LAYER_METAL1 = "metal1"
LAYER_VIA1 = "via1"
LAYER_METAL2 = "metal2"
LAYER_NWELL = "nwell"
LAYER_CAPTOP = "captop"      # second poly / MiM top plate
LAYER_HIRES = "hires"        # high-resistivity poly

ROUTING_LAYERS = (LAYER_METAL1, LAYER_METAL2)

GDS_LAYER_NUMBERS = {
    LAYER_NWELL: 1,
    LAYER_NDIFF: 2,
    LAYER_PDIFF: 3,
    LAYER_POLY: 4,
    LAYER_CONTACT: 5,
    LAYER_METAL1: 6,
    LAYER_VIA1: 7,
    LAYER_METAL2: 8,
    LAYER_CAPTOP: 9,
    LAYER_HIRES: 10,
}


@dataclass(frozen=True)
class Technology:
    """Design rules (nm) and parasitic coefficients for one process."""

    name: str = "scmos08"
    lambda_nm: int = 400

    # Electrical parasitics.
    metal1_sheet_ohm: float = 0.07
    metal2_sheet_ohm: float = 0.04
    poly_sheet_ohm: float = 25.0
    hires_sheet_ohm: float = 4000.0
    metal_cap_area: float = 0.03e-3     # F/m² to substrate
    metal_cap_fringe: float = 0.03e-9   # F/m of perimeter
    coupling_cap: float = 0.05e-9       # F/m between parallel adjacent wires
    cap_density: float = 1.0e-3         # F/m² for captop capacitors
    contact_res_ohm: float = 5.0
    via_res_ohm: float = 2.5

    def L(self, n: float) -> int:
        """n lambdas in nanometres."""
        return int(round(n * self.lambda_nm))

    # -- derived rules (all in nm) ---------------------------------------
    @property
    def min_width_poly(self) -> int:
        return self.L(2)

    @property
    def min_width_diff(self) -> int:
        return self.L(3)

    @property
    def min_width_metal(self) -> int:
        return self.L(3)

    @property
    def min_space_metal(self) -> int:
        return self.L(3)

    @property
    def min_space_poly(self) -> int:
        return self.L(2)

    @property
    def min_space_diff(self) -> int:
        return self.L(3)

    @property
    def contact_size(self) -> int:
        return self.L(2)

    @property
    def contact_enclosure(self) -> int:
        return self.L(1)

    @property
    def gate_overhang(self) -> int:
        """Poly must extend past diffusion by this much."""
        return self.L(2)

    @property
    def diff_contact_pitch(self) -> int:
        """S/D diffusion extension needed to land one contact row."""
        return self.contact_size + 2 * self.contact_enclosure + self.L(1)

    @property
    def routing_pitch(self) -> int:
        return self.min_width_metal + self.min_space_metal

    @property
    def well_margin(self) -> int:
        return self.L(5)

    def wire_resistance(self, layer: str, length_nm: int,
                        width_nm: int) -> float:
        sheet = {
            LAYER_METAL1: self.metal1_sheet_ohm,
            LAYER_METAL2: self.metal2_sheet_ohm,
            LAYER_POLY: self.poly_sheet_ohm,
            LAYER_HIRES: self.hires_sheet_ohm,
        }.get(layer)
        if sheet is None:
            raise KeyError(f"no sheet resistance for layer {layer!r}")
        if width_nm <= 0:
            raise ValueError("wire width must be positive")
        return sheet * length_nm / width_nm

    def wire_capacitance(self, length_nm: int, width_nm: int) -> float:
        """Ground capacitance of a wire segment (area + fringe)."""
        area = (length_nm * 1e-9) * (width_nm * 1e-9)
        perimeter = 2.0 * (length_nm + width_nm) * 1e-9
        return area * self.metal_cap_area + perimeter * self.metal_cap_fringe

    def coupling_capacitance(self, parallel_run_nm: int) -> float:
        return parallel_run_nm * 1e-9 * self.coupling_cap


DEFAULT_TECH = Technology()
