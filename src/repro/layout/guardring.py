"""Guard rings: substrate-contact rings around sensitive analog cells.

The standard physical countermeasure to the substrate coupling §3.2
dwells on ([58, 59]): a ring of substrate (or well) contacts tied to a
quiet supply surrounds the protected devices, collecting injected
carriers before they reach them.  The generator produces the ring
geometry; :func:`guard_ring_attenuation` provides the first-order
effectiveness model the floorplanner can consume (a grounded ring
shunts a fraction of the laterally flowing noise current).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.layout.geometry import Cell, Rect
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_CONTACT,
    LAYER_METAL1,
    LAYER_NDIFF,
    LAYER_NWELL,
    Technology,
)


@dataclass
class GuardRingResult:
    cell: Cell
    ring_rect: Rect       # outer boundary
    net: str
    contact_count: int


def add_guard_ring(cell: Cell, net: str = "0",
                   tech: Technology = DEFAULT_TECH,
                   clearance: int | None = None,
                   well_ring: bool = False) -> GuardRingResult:
    """Surround a cell's bbox with a contacted diffusion ring.

    ``well_ring=True`` adds an n-well ring (for protecting PMOS regions /
    collecting electrons); otherwise a substrate p+ ring (drawn on the
    diffusion layer) tied to ``net``.  The ring is drawn into the given
    cell; metal1 runs on top of the diffusion with a contact chain.
    """
    clearance = clearance if clearance is not None else 4 * tech.min_space_diff
    width = tech.diff_contact_pitch
    inner = cell.bbox().expanded(clearance)
    outer = inner.expanded(width)
    sides = [
        Rect(outer.x1, outer.y1, outer.x2, inner.y1),   # bottom
        Rect(outer.x1, inner.y2, outer.x2, outer.y2),   # top
        Rect(outer.x1, inner.y1, inner.x1, inner.y2),   # left
        Rect(inner.x2, inner.y1, outer.x2, inner.y2),   # right
    ]
    contact_count = 0
    for side in sides:
        cell.add_shape(LAYER_NDIFF, side, net)
        cell.add_shape(LAYER_METAL1, side, net)
        contact_count += _contact_chain(cell, tech, side, net)
    if well_ring:
        cell.add_shape(LAYER_NWELL, outer.expanded(tech.well_margin), net)
    cell.add_port(f"guard_{net}", LAYER_METAL1, sides[0], net)
    return GuardRingResult(cell, outer, net, contact_count)


def _contact_chain(cell: Cell, tech: Technology, strip: Rect,
                   net: str) -> int:
    size = tech.contact_size
    enc = tech.contact_enclosure
    pitch = 2 * size
    count = 0
    if strip.width >= strip.height:  # horizontal strip
        y = strip.y1 + (strip.height - size) // 2
        x = strip.x1 + enc
        while x + size + enc <= strip.x2:
            cell.add_shape(LAYER_CONTACT, Rect(x, y, x + size, y + size),
                           net)
            x += pitch
            count += 1
    else:
        x = strip.x1 + (strip.width - size) // 2
        y = strip.y1 + enc
        while y + size + enc <= strip.y2:
            cell.add_shape(LAYER_CONTACT, Rect(x, y, x + size, y + size),
                           net)
            y += pitch
            count += 1
    return count


def guard_ring_attenuation(ring_resistance: float = 5.0,
                           path_resistance: float = 200.0) -> float:
    """First-order noise attenuation factor of a grounded guard ring.

    The laterally flowing substrate current divides between the low-
    impedance ring tie (R_ring to the quiet supply) and the remaining
    lateral path (R_path to the victim).  The fraction reaching the
    victim is R_ring/(R_ring + R_path) — with typical numbers, a 10×-ish
    reduction, consistent with published measurements for epi substrates.
    """
    if ring_resistance < 0 or path_resistance <= 0:
        raise ValueError("resistances must be positive")
    return ring_resistance / (ring_resistance + path_resistance)


def ring_resistance_estimate(result: GuardRingResult,
                             tech: Technology = DEFAULT_TECH) -> float:
    """Ohms from ring diffusion to the quiet supply (contacts in parallel)."""
    if result.contact_count == 0:
        return float("inf")
    return tech.contact_res_ohm / result.contact_count
