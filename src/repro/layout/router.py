"""ANAGRAM II-style analog area router: multilayer grid maze search.

Reproduces the router features the tutorial highlights [35, 36, 39, 40]:

* maze (A*) search on a two-layer routing grid with via and bend costs
  and preferred directions (metal1 horizontal, metal2 vertical);
* *net classes* — ``noisy``, ``sensitive`` and ``neutral`` wires; the
  cost of a grid cell grows when an incompatible class runs adjacent,
  implementing crosstalk avoidance ("mechanisms for tagging compatible
  and incompatible classes of wires");
* *symmetric differential routing* — a net pair is routed by mirroring
  the first net's path about the placement's symmetry axis;
* *over-the-device routing* — device geometry blocks only metal1;
  metal2 may cross devices;
* parasitic-bounded mode (ROAD/ANAGRAM III [39, 40]) — per-net
  capacitance budgets; a net whose routed capacitance would exceed its
  bound is charged an escalating cost, steering it to shorter/less
  coupled paths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.layout.geometry import Cell, Rect
from repro.layout.placer import Placement
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_METAL1,
    LAYER_METAL2,
    LAYER_POLY,
    LAYER_VIA1,
    Technology,
)

NEUTRAL = "neutral"
NOISY = "noisy"
SENSITIVE = "sensitive"

_INCOMPATIBLE = {(NOISY, SENSITIVE), (SENSITIVE, NOISY)}

_M1, _M2 = 0, 1


@dataclass
class RoutingRequest:
    """One net to route: pins as (x, y, layer) plus its class and bounds."""

    net: str
    pins: list[tuple[int, int, str]]
    net_class: str = NEUTRAL
    cap_bound: float | None = None     # parasitic bound (F), optional
    width: int | None = None           # wire width override


@dataclass
class RoutedWire:
    """A routed net: list of grid-space segments with layers."""

    net: str
    net_class: str
    segments: list[tuple[int, int, int, int, int]]  # (x1,y1,x2,y2,layer)
    vias: list[tuple[int, int]]
    length_nm: int
    capacitance: float

    def shapes(self, tech: Technology, width: int) -> list:
        from repro.layout.geometry import Shape
        shapes = []
        half = width // 2
        for x1, y1, x2, y2, layer in self.segments:
            layer_name = LAYER_METAL1 if layer == _M1 else LAYER_METAL2
            rect = Rect(min(x1, x2) - half, min(y1, y2) - half,
                        max(x1, x2) + half, max(y1, y2) + half)
            shapes.append(Shape(layer_name, rect, self.net))
        for x, y in self.vias:
            shapes.append(Shape(LAYER_VIA1,
                                Rect(x - half, y - half, x + half, y + half),
                                self.net))
        return shapes


class RoutingError(RuntimeError):
    """Raised when a net cannot be routed."""


@dataclass
class RoutingResult:
    wires: dict[str, RoutedWire]
    failed: list[str]
    grid_pitch: int

    @property
    def total_length(self) -> int:
        return sum(w.length_nm for w in self.wires.values())

    def crosstalk_adjacencies(self, router: "AnagramRouter") -> int:
        return router.count_incompatible_adjacencies(self)


class AnagramRouter:
    """Two-layer grid maze router with analog costs."""

    def __init__(self, area: Rect, obstacles_m1: list[Rect],
                 tech: Technology = DEFAULT_TECH,
                 axis_x: int | None = None,
                 bend_cost: float = 2.0, via_cost: float = 5.0,
                 wrong_way_cost: float = 1.5,
                 crosstalk_cost: float = 25.0,
                 cap_overrun_cost: float = 200.0,
                 pitch: int | None = None):
        self.tech = tech
        self.pitch = pitch if pitch is not None else tech.routing_pitch
        margin = 4 * self.pitch
        self.area = area.expanded(margin)
        self.nx = max(2, self.area.width // self.pitch + 1)
        self.ny = max(2, self.area.height // self.pitch + 1)
        self.axis_x = axis_x
        self.bend_cost = bend_cost
        self.via_cost = via_cost
        self.wrong_way_cost = wrong_way_cost
        self.crosstalk_cost = crosstalk_cost
        self.cap_overrun_cost = cap_overrun_cost
        # occupancy[layer][(ix, iy)] = (net, net_class)
        self.occupancy: list[dict[tuple[int, int], tuple[str, str]]] = [
            {}, {}]
        self.blocked_m1: set[tuple[int, int]] = set()
        for rect in obstacles_m1:
            self._block(rect)

    # ------------------------------------------------------------------
    # grid mapping
    # ------------------------------------------------------------------
    def to_grid(self, x: int, y: int) -> tuple[int, int]:
        ix = (x - self.area.x1) // self.pitch
        iy = (y - self.area.y1) // self.pitch
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def to_coord(self, ix: int, iy: int) -> tuple[int, int]:
        return (self.area.x1 + ix * self.pitch,
                self.area.y1 + iy * self.pitch)

    def _block(self, rect: Rect) -> None:
        gx1, gy1 = self.to_grid(rect.x1 - self.pitch // 2,
                                rect.y1 - self.pitch // 2)
        gx2, gy2 = self.to_grid(rect.x2 + self.pitch // 2,
                                rect.y2 + self.pitch // 2)
        for ix in range(gx1, gx2 + 1):
            for iy in range(gy1, gy2 + 1):
                self.blocked_m1.add((ix, iy))

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def _cell_cost(self, layer: int, ix: int, iy: int, net: str,
                   net_class: str) -> float | None:
        """Cost of occupying a cell, or None if unusable."""
        if layer == _M1 and (ix, iy) in self.blocked_m1:
            return None
        occupant = self.occupancy[layer].get((ix, iy))
        if occupant is not None and occupant[0] != net:
            return None
        cost = 1.0
        # Crosstalk: adjacency to incompatible-class wires on any layer.
        for other_layer in (_M1, _M2):
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                neighbour = self.occupancy[other_layer].get(
                    (ix + dx, iy + dy))
                if neighbour is None or neighbour[0] == net:
                    continue
                if (net_class, neighbour[1]) in _INCOMPATIBLE:
                    cost += self.crosstalk_cost
        return cost

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _astar(self, sources: set[tuple[int, int, int]],
               targets: set[tuple[int, int, int]], net: str,
               net_class: str, cap_state: float,
               cap_bound: float | None) -> list[tuple[int, int, int]] | None:
        """Multi-source/multi-target A* over (layer, ix, iy) states."""
        target_cells = {(ix, iy) for _, ix, iy in targets}

        def h(ix: int, iy: int) -> float:
            return min(abs(ix - tx) + abs(iy - ty)
                       for tx, ty in target_cells)

        open_heap: list[tuple[float, float, tuple[int, int, int],
                              tuple[int, int, int] | None]] = []
        best: dict[tuple[int, int, int], float] = {}
        parent: dict[tuple[int, int, int], tuple[int, int, int] | None] = {}
        cap_per_cell = self.tech.wire_capacitance(
            self.pitch, self.tech.min_width_metal)
        for state in sources:
            best[state] = 0.0
            parent[state] = None
            heapq.heappush(open_heap, (h(state[1], state[2]), 0.0,
                                       state, None))
        while open_heap:
            f, g, state, par = heapq.heappop(open_heap)
            if g > best.get(state, float("inf")):
                continue
            layer, ix, iy = state
            if state in targets:
                return self._backtrace(state, parent)
            for nstate, step in self._neighbours(state):
                nlayer, nx_, ny_ = nstate
                if not (0 <= nx_ < self.nx and 0 <= ny_ < self.ny):
                    continue
                cell = self._cell_cost(nlayer, nx_, ny_, net, net_class)
                if cell is None:
                    continue
                move = cell + step
                if cap_bound is not None:
                    projected = cap_state + (g + move) * cap_per_cell
                    if projected > cap_bound:
                        move += self.cap_overrun_cost
                ng = g + move
                if ng < best.get(nstate, float("inf")):
                    best[nstate] = ng
                    parent[nstate] = state
                    heapq.heappush(open_heap,
                                   (ng + h(nx_, ny_), ng, nstate, state))
        return None

    def _neighbours(self, state: tuple[int, int, int]):
        layer, ix, iy = state
        # Preferred direction costs: m1 horizontal, m2 vertical.
        if layer == _M1:
            yield (layer, ix + 1, iy), 0.0
            yield (layer, ix - 1, iy), 0.0
            yield (layer, ix, iy + 1), self.wrong_way_cost
            yield (layer, ix, iy - 1), self.wrong_way_cost
        else:
            yield (layer, ix, iy + 1), 0.0
            yield (layer, ix, iy - 1), 0.0
            yield (layer, ix + 1, iy), self.wrong_way_cost
            yield (layer, ix - 1, iy), self.wrong_way_cost
        yield ((1 - layer), ix, iy), self.via_cost

    @staticmethod
    def _backtrace(state, parent):
        path = [state]
        while parent[state] is not None:
            state = parent[state]
            path.append(state)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # net routing
    # ------------------------------------------------------------------
    def route_net(self, request: RoutingRequest) -> RoutedWire:
        if len(request.pins) < 2:
            raise RoutingError(f"net {request.net!r} has fewer than 2 pins")
        pin_states = []
        for x, y, layer in request.pins:
            ix, iy = self.to_grid(x, y)
            glayer = _M1 if layer in (LAYER_METAL1, LAYER_POLY) else _M2
            pin_states.append((glayer, ix, iy))
            # Pins may sit on blocked cells (they are on the device).
            self.blocked_m1.discard((ix, iy))
        tree: set[tuple[int, int, int]] = {pin_states[0]}
        all_cells: list[tuple[int, int, int]] = [pin_states[0]]
        cap_per_cell = self.tech.wire_capacitance(
            self.pitch, self.tech.min_width_metal)
        cap_state = 0.0
        for pin in pin_states[1:]:
            if pin in tree:
                continue
            path = self._astar(tree, {pin}, request.net,
                               request.net_class, cap_state,
                               request.cap_bound)
            if path is None:
                raise RoutingError(
                    f"net {request.net!r}: no path to pin at "
                    f"{self.to_coord(pin[1], pin[2])}")
            for state in path:
                if state not in tree:
                    tree.add(state)
                    all_cells.append(state)
            cap_state += len(path) * cap_per_cell
        return self._commit(request, all_cells)

    def _commit(self, request: RoutingRequest,
                cells: list[tuple[int, int, int]]) -> RoutedWire:
        segments = []
        vias = []
        for layer, ix, iy in cells:
            self.occupancy[layer][(ix, iy)] = (request.net,
                                               request.net_class)
        cell_set = set(cells)
        for layer, ix, iy in cells:
            x, y = self.to_coord(ix, iy)
            if (layer, ix + 1, iy) in cell_set:
                x2, _ = self.to_coord(ix + 1, iy)
                segments.append((x, y, x2, y, layer))
            if (layer, ix, iy + 1) in cell_set:
                _, y2 = self.to_coord(ix, iy + 1)
                segments.append((x, y, x, y2, layer))
            if ((1 - layer), ix, iy) in cell_set and layer == _M1:
                vias.append((x, y))
        length = sum(abs(x2 - x1) + abs(y2 - y1)
                     for x1, y1, x2, y2, _ in segments)
        cap = self.tech.wire_capacitance(length, self.tech.min_width_metal)
        return RoutedWire(request.net, request.net_class, segments, vias,
                          length, cap)

    def route_mirrored(self, wire: RoutedWire,
                       request: RoutingRequest) -> RoutedWire:
        """Route a net as the mirror image of an already-routed wire.

        This is ANAGRAM II's symmetric differential routing: the twin
        path is the reflection about the placement axis; it is validated
        against obstacles/occupancy and committed, or a RoutingError is
        raised so the caller can fall back to independent routing.
        """
        if self.axis_x is None:
            raise RoutingError("no symmetry axis configured")
        cells = []
        for layer in (_M1, _M2):
            for (ix, iy), (net, _) in list(self.occupancy[layer].items()):
                if net == wire.net:
                    x, y = self.to_coord(ix, iy)
                    mx = 2 * self.axis_x - x
                    mix, miy = self.to_grid(mx, y)
                    cells.append((layer, mix, miy))
        for layer, ix, iy in cells:
            cost = self._cell_cost(layer, ix, iy, request.net,
                                   request.net_class)
            if cost is None:
                raise RoutingError(
                    f"mirror path of {wire.net!r} blocked at "
                    f"{self.to_coord(ix, iy)}")
        return self._commit(request, cells)

    # ------------------------------------------------------------------
    def count_incompatible_adjacencies(self, result: "RoutingResult") -> int:
        count = 0
        for layer in (_M1, _M2):
            for (ix, iy), (net, cls) in self.occupancy[layer].items():
                for dx, dy in ((1, 0), (0, 1)):
                    other = self.occupancy[layer].get((ix + dx, iy + dy))
                    if other is None or other[0] == net:
                        continue
                    if (cls, other[1]) in _INCOMPATIBLE:
                        count += 1
        return count


def route_placement(placement: Placement,
                    requests: list[RoutingRequest],
                    net_pairs: list | None = None,
                    tech: Technology = DEFAULT_TECH,
                    seed: int = 1) -> tuple[RoutingResult, AnagramRouter]:
    """Route all nets over a placement.

    ``net_pairs`` (from the constraint extractor) are routed as mirrored
    twins where geometrically possible.  Device metal1/poly shapes become
    metal1 obstacles; metal2 remains free over devices.
    """
    obstacles = []
    for obj in placement.objects.values():
        cell = obj.transformed_cell()
        for shape in cell.shapes:
            if shape.layer in (LAYER_METAL1, LAYER_POLY):
                obstacles.append(shape.rect)
    paired: dict[str, str] = {}
    for pair in (net_pairs or []):
        paired[pair.net_a] = pair.net_b
        paired[pair.net_b] = pair.net_a
    by_net = {r.net: r for r in requests}
    # Route sensitive nets first (they get the cleanest paths), then
    # neutral, noisy last — the standard analog ordering.
    order = sorted(requests, key=lambda r: {SENSITIVE: 0, NEUTRAL: 1,
                                            NOISY: 2}[r.net_class])
    # Rip-up in its simplest honest form: when a net fails, the whole job
    # restarts with the failed nets promoted to the front, so they claim
    # their resources before the nets that previously boxed them in.
    router = None
    wires: dict[str, RoutedWire] = {}
    failed: list[str] = []
    # Escalation ladder: half-pitch grid first (dense device-port
    # geometries need sub-pitch resolution so neighbouring pins of
    # different nets land on distinct cells); quarter pitch when the
    # restarts cannot untangle a congested template.
    for pitch in (max(tech.routing_pitch // 2, 1),
                  max(tech.routing_pitch // 4, 1)):
        for _ in range(5):
            router = AnagramRouter(placement.bbox(), list(obstacles), tech,
                                   axis_x=placement.axis_x, pitch=pitch)
            wires = {}
            failed = []
            for request in order:
                if request.net in wires:
                    continue
                try:
                    wire = router.route_net(request)
                    wires[request.net] = wire
                except RoutingError:
                    failed.append(request.net)
                    continue
                twin_name = paired.get(request.net)
                if twin_name and twin_name in by_net \
                        and twin_name not in wires:
                    twin_req = by_net[twin_name]
                    try:
                        wires[twin_name] = router.route_mirrored(wire,
                                                                 twin_req)
                    except RoutingError:
                        pass  # fall through: routed independently later
            if not failed:
                break
            order = [by_net[n] for n in failed] + \
                [r for r in order if r.net not in failed]
        if not failed:
            break
    result = RoutingResult(wires, failed, router.pitch)
    return result, router


def routed_cell(placement: Placement, result: RoutingResult,
                tech: Technology = DEFAULT_TECH,
                name: str = "routed") -> Cell:
    """Assemble devices + wires into one flat cell (for GDS export)."""
    cell = Cell(name)
    for obj in placement.objects.values():
        sub = obj.transformed_cell()
        cell.shapes.extend(sub.shapes)
    for wire in result.wires.values():
        cell.shapes.extend(wire.shapes(tech, tech.min_width_metal))
    return cell
