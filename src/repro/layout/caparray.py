"""Common-centroid unit-capacitor array generation.

The backend of the [52]-style SC-filter silicon compiler: matched
capacitors are realized as arrays of identical unit capacitors arranged
so that each logical capacitor's units share a common centroid, which
cancels linear process gradients — the foundational analog matching
technique the tutorial's constraint-extraction and matching work ([47])
assumes.

The assignment algorithm is the standard greedy centroid balancer: unit
cells are handed out in center-symmetric pairs, largest capacitor first,
and the result is checked by computing every capacitor's centroid offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.layout.geometry import Cell, Rect
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_CAPTOP,
    LAYER_METAL1,
    LAYER_POLY,
    Technology,
)


class CapArrayError(ValueError):
    pass


@dataclass
class CapArrayResult:
    cell: Cell
    assignment: list[list[str | None]]   # [row][col] -> cap name
    centroid_error: dict[str, float]     # per-cap centroid offset (cells)
    rows: int
    cols: int
    unit_cap: float

    def units_of(self, name: str) -> int:
        return sum(row.count(name) for row in self.assignment)


def _grid_shape(total_units: int) -> tuple[int, int]:
    """Near-square grid with an exact center (odd benefits symmetry)."""
    side = max(2, math.ceil(math.sqrt(total_units)))
    rows = side
    cols = math.ceil(total_units / side)
    return rows, cols


def common_centroid_assignment(units: dict[str, int]) -> list[list[str | None]]:
    """Assign unit cells to capacitors with center-symmetric pairing.

    Cells are visited outward-in in centrosymmetric pairs; each pair goes
    to the capacitor with the most unassigned units (largest remaining
    first), so every capacitor's units balance about the array center.
    Odd unit counts place their odd cell as close to the center as
    possible.
    """
    if not units:
        raise CapArrayError("no capacitors to place")
    if any(n <= 0 for n in units.values()):
        raise CapArrayError("unit counts must be positive")
    total = sum(units.values())
    rows, cols = _grid_shape(total)
    grid: list[list[str | None]] = [[None] * cols for _ in range(rows)]
    cy, cx = (rows - 1) / 2.0, (cols - 1) / 2.0

    cells = [(r, c) for r in range(rows) for c in range(cols)]
    cells.sort(key=lambda rc: (abs(rc[0] - cy) + abs(rc[1] - cx),
                               rc[0], rc[1]))
    remaining = dict(units)

    def partner(rc):
        return (rows - 1 - rc[0], cols - 1 - rc[1])

    used = set()
    # Odd-count capacitors first claim one cell as close to the center as
    # possible — their unpaired unit is the only one that cannot be
    # balanced, so it must sit where the gradient error is smallest.
    odd_names = sorted((n for n, c in remaining.items() if c % 2 == 1),
                       key=lambda n: remaining[n])
    for name in odd_names:
        for rc in cells:
            if rc in used:
                continue
            grid[rc[0]][rc[1]] = name
            used.add(rc)
            remaining[name] -= 1
            break
    # Then center-symmetric pairs, largest remaining capacitor first.
    for rc in cells:
        if rc in used:
            continue
        pr = partner(rc)
        if pr == rc or pr in used:
            continue
        name = max((n for n in remaining if remaining[n] >= 2),
                   key=lambda n: remaining[n], default=None)
        if name is None:
            break
        grid[rc[0]][rc[1]] = name
        grid[pr[0]][pr[1]] = name
        used.add(rc)
        used.add(pr)
        remaining[name] -= 2
    # Fallback: cells whose partners were consumed by the odd pre-pass
    # cannot host a symmetric pair; fill them nearest-center first.
    for rc in cells:
        if rc in used:
            continue
        name = max((n for n in remaining if remaining[n] > 0),
                   key=lambda n: remaining[n], default=None)
        if name is None:
            break
        grid[rc[0]][rc[1]] = name
        used.add(rc)
        remaining[name] -= 1
    if any(v > 0 for v in remaining.values()):
        raise CapArrayError("grid too small for the requested units")
    return grid


def centroid_errors(assignment: list[list[str | None]]) -> dict[str, float]:
    """Distance of each capacitor's centroid from the array center,
    in unit-cell pitches."""
    rows = len(assignment)
    cols = len(assignment[0])
    cy, cx = (rows - 1) / 2.0, (cols - 1) / 2.0
    sums: dict[str, list[float]] = {}
    for r in range(rows):
        for c in range(cols):
            name = assignment[r][c]
            if name is None:
                continue
            acc = sums.setdefault(name, [0.0, 0.0, 0.0])
            acc[0] += r
            acc[1] += c
            acc[2] += 1
    return {
        name: math.hypot(acc[0] / acc[2] - cy, acc[1] / acc[2] - cx)
        for name, acc in sums.items()
    }


def generate_cap_array(units: dict[str, int], unit_cap: float,
                       tech: Technology = DEFAULT_TECH,
                       name: str = "cap_array") -> CapArrayResult:
    """Generate the layout of a matched common-centroid capacitor array.

    Each unit is a double-poly square sized from the technology's cap
    density; per-capacitor metal1 strap rectangles tag ownership for the
    router.  Dummy cells (``None``) fill the grid rim positions left
    unassigned, preserving the etch environment.
    """
    assignment = common_centroid_assignment(units)
    rows, cols = len(assignment), len(assignment[0])
    side = max(int(round(math.sqrt(unit_cap / tech.cap_density) * 1e9)),
               tech.L(8))
    margin = tech.L(2)
    pitch = side + 2 * margin + tech.L(3)
    cell = Cell(name)
    for r in range(rows):
        for c in range(cols):
            x0, y0 = c * pitch, r * pitch
            owner = assignment[r][c]
            bottom = Rect(x0, y0, x0 + side + 2 * margin,
                          y0 + side + 2 * margin)
            top = Rect(x0 + margin, y0 + margin, x0 + margin + side,
                       y0 + margin + side)
            net = owner if owner is not None else "dummy"
            cell.add_shape(LAYER_POLY, bottom, f"{net}_bot")
            cell.add_shape(LAYER_CAPTOP, top, f"{net}_top")
            cell.add_shape(LAYER_METAL1,
                           Rect(x0 + margin, y0 + margin,
                                x0 + margin + tech.L(2),
                                y0 + margin + tech.L(2)),
                           f"{net}_top")
    for cap_name in units:
        first = next((r, c) for r in range(rows) for c in range(cols)
                     if assignment[r][c] == cap_name)
        r, c = first
        x0, y0 = c * pitch + margin, r * pitch + margin
        cell.add_port(cap_name, LAYER_METAL1,
                      Rect(x0, y0, x0 + tech.L(2), y0 + tech.L(2)),
                      cap_name)
    return CapArrayResult(cell, assignment, centroid_errors(assignment),
                          rows, cols, unit_cap)
