"""Procedural device generators: MOS fingers, resistors, capacitors.

These are the module generators every macrocell-style system needs
(ILAC's "large sophisticated library" vs. KOAN's "very small library" —
ours is small and parametric, KOAN-style).  The MOS generator supports
*folding* (splitting a wide device into fingers) which is the degree of
freedom KOAN's placer exploits dynamically.

Layout convention: gates run vertically, diffusion grows horizontally as
``S G D G S ...``; a folded device with an even finger count has the same
terminal on both outer edges, which is what enables diffusion abutment
merges between neighbouring devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.devices import Capacitor, Mosfet, Resistor
from repro.layout.geometry import Cell, Rect
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_CAPTOP,
    LAYER_CONTACT,
    LAYER_HIRES,
    LAYER_METAL1,
    LAYER_NDIFF,
    LAYER_NWELL,
    LAYER_PDIFF,
    LAYER_POLY,
    Technology,
)


@dataclass
class DeviceLayout:
    """A generated device: its cell plus connectivity metadata."""

    cell: Cell
    device_name: str
    kind: str                       # "mos" | "resistor" | "capacitor"
    port_nets: dict[str, str]       # port name -> net name
    left_net: str | None = None     # net exposed on the left diffusion edge
    right_net: str | None = None    # net on the right diffusion edge
    fingers: int = 1

    def bbox(self) -> Rect:
        return self.cell.bbox()

    @property
    def width(self) -> int:
        return self.bbox().width

    @property
    def height(self) -> int:
        return self.bbox().height


def generate_mosfet(dev: Mosfet, tech: Technology = DEFAULT_TECH,
                    fingers: int = 1) -> DeviceLayout:
    """Multi-finger MOS layout with contacted source/drain regions.

    ``fingers`` splits the channel width into that many parallel gates
    (folding).  Odd finger counts expose source on one edge and drain on
    the other; even counts expose the source on both edges.
    """
    if fingers < 1:
        raise ValueError("fingers must be >= 1")
    total_w_nm = int(round(dev.w * dev.m * 1e9))
    l_nm = max(int(round(dev.l * 1e9)), tech.min_width_poly)
    finger_w = max(total_w_nm // fingers, tech.min_width_diff)
    diff_layer = LAYER_NDIFF if dev.model.is_nmos else LAYER_PDIFF

    cell = Cell(f"{dev.name}_layout")
    sd_w = tech.diff_contact_pitch
    pitch = sd_w + l_nm
    n_regions = fingers + 1
    diff_width = n_regions * sd_w + fingers * l_nm
    diff = Rect(0, 0, diff_width, finger_w)
    cell.add_shape(diff_layer, diff)

    # Source/drain regions alternate starting with source.
    nets = {}
    for i in range(n_regions):
        x1 = i * pitch
        region = Rect(x1, 0, x1 + sd_w, finger_w)
        terminal = "s" if i % 2 == 0 else "d"
        net = dev.source if terminal == "s" else dev.drain
        nets[i] = (terminal, net)
        _contact_stack(cell, tech, region, net)

    # Gates: vertical poly strips joined by a horizontal poly head.
    overhang = tech.gate_overhang
    head_y1 = finger_w + overhang
    head_y2 = head_y1 + tech.min_width_poly
    for i in range(fingers):
        x1 = sd_w + i * pitch
        cell.add_shape(LAYER_POLY,
                       Rect(x1, -overhang, x1 + l_nm, head_y2), dev.gate)
    if fingers > 1:
        cell.add_shape(LAYER_POLY,
                       Rect(sd_w, head_y1, sd_w + (fingers - 1) * pitch
                            + l_nm, head_y2), dev.gate)

    # Ports: gate on poly head, source/drain on the metal1 of their first
    # contacted regions.
    first_gate_x = sd_w
    cell.add_port("g", LAYER_POLY,
                  Rect(first_gate_x, head_y1, first_gate_x + l_nm, head_y2),
                  dev.gate)
    s_region = Rect(0, 0, sd_w, finger_w)
    cell.add_port("s", LAYER_METAL1, s_region, dev.source)
    d_region = Rect(pitch, 0, pitch + sd_w, finger_w)
    cell.add_port("d", LAYER_METAL1, d_region, dev.drain)

    if not dev.model.is_nmos:
        cell.add_shape(LAYER_NWELL, diff.expanded(tech.well_margin))

    last_terminal, last_net = nets[n_regions - 1]
    return DeviceLayout(
        cell=cell, device_name=dev.name, kind="mos",
        port_nets={"g": dev.gate, "s": dev.source, "d": dev.drain,
                   "b": dev.bulk},
        left_net=dev.source,
        right_net=last_net,
        fingers=fingers,
    )


def _contact_stack(cell: Cell, tech: Technology, region: Rect,
                   net: str) -> None:
    """Contacts + metal1 strap over one S/D region."""
    cell.add_shape(LAYER_METAL1, region, net)
    size = tech.contact_size
    enc = tech.contact_enclosure
    n_contacts = max(1, (region.height - 2 * enc) // (2 * size))
    x1 = region.x1 + (region.width - size) // 2
    for k in range(n_contacts):
        y1 = region.y1 + enc + k * 2 * size
        cell.add_shape(LAYER_CONTACT, Rect(x1, y1, x1 + size, y1 + size), net)


def good_finger_count(dev: Mosfet, tech: Technology = DEFAULT_TECH,
                      max_aspect: float = 4.0) -> int:
    """Pick a finger count keeping the device bbox near-square-ish."""
    total_w = dev.w * dev.m * 1e9
    for fingers in (1, 2, 4, 6, 8, 12, 16, 24, 32):
        finger_w = total_w / fingers
        body_w = (fingers + 1) * tech.diff_contact_pitch \
            + fingers * max(dev.l * 1e9, tech.min_width_poly)
        if finger_w <= max_aspect * body_w:
            return fingers
    return 32


def generate_resistor(dev: Resistor, tech: Technology = DEFAULT_TECH,
                      max_strip_squares: int = 50) -> DeviceLayout:
    """Serpentine high-resistivity poly resistor."""
    squares = dev.value / (dev.sheet_res or tech.hires_sheet_ohm)
    if squares <= 0:
        raise ValueError("resistor needs positive square count")
    w = tech.min_width_poly * 2
    n_strips = max(1, math.ceil(squares / max_strip_squares))
    squares_per_strip = squares / n_strips
    strip_len = max(int(round(squares_per_strip * w)), w)
    gap = tech.min_space_poly * 2

    cell = Cell(f"{dev.name}_layout")
    for i in range(n_strips):
        y1 = i * (w + gap)
        cell.add_shape(LAYER_HIRES, Rect(0, y1, strip_len, y1 + w),
                       dev.name)
        if i + 1 < n_strips:  # hairpin connecting to the next strip
            x1 = strip_len - w if i % 2 == 0 else 0
            cell.add_shape(LAYER_HIRES,
                           Rect(x1, y1 + w, x1 + w, y1 + w + gap), dev.name)
    # Terminals: metal1 pads at the free ends of first and last strips.
    pad = tech.diff_contact_pitch
    a_rect = Rect(0, 0, pad, w)
    last_y = (n_strips - 1) * (w + gap)
    b_x1 = 0 if n_strips % 2 == 0 else strip_len - pad
    b_rect = Rect(b_x1, last_y, b_x1 + pad, last_y + w)
    cell.add_shape(LAYER_METAL1, a_rect, dev.nodes[0])
    cell.add_shape(LAYER_METAL1, b_rect, dev.nodes[1])
    cell.add_port("a", LAYER_METAL1, a_rect, dev.nodes[0])
    cell.add_port("b", LAYER_METAL1, b_rect, dev.nodes[1])
    return DeviceLayout(cell, dev.name, "resistor",
                        {"a": dev.nodes[0], "b": dev.nodes[1]})


def generate_capacitor(dev: Capacitor,
                       tech: Technology = DEFAULT_TECH) -> DeviceLayout:
    """Square double-poly capacitor; bottom plate is the first node."""
    if dev.value <= 0:
        raise ValueError("capacitor needs positive value")
    area_m2 = dev.value / tech.cap_density
    side = max(int(round(math.sqrt(area_m2) * 1e9)), tech.L(8))
    margin = tech.L(2)
    cell = Cell(f"{dev.name}_layout")
    bottom = Rect(0, 0, side + 2 * margin, side + 2 * margin)
    top = Rect(margin, margin, margin + side, margin + side)
    cell.add_shape(LAYER_POLY, bottom, dev.nodes[1])
    cell.add_shape(LAYER_CAPTOP, top, dev.nodes[0])
    pad = tech.diff_contact_pitch
    top_pad = Rect(margin, margin, margin + pad, margin + pad)
    bot_pad = Rect(bottom.x2 - pad, 0, bottom.x2, pad)
    cell.add_shape(LAYER_METAL1, top_pad, dev.nodes[0])
    cell.add_shape(LAYER_METAL1, bot_pad, dev.nodes[1])
    cell.add_port("top", LAYER_METAL1, top_pad, dev.nodes[0])
    cell.add_port("bot", LAYER_METAL1, bot_pad, dev.nodes[1])
    return DeviceLayout(cell, dev.name, "capacitor",
                        {"top": dev.nodes[0], "bot": dev.nodes[1]})


def generate_device(dev, tech: Technology = DEFAULT_TECH,
                    fingers: int | None = None) -> DeviceLayout:
    """Dispatch a circuit device to its generator."""
    if isinstance(dev, Mosfet):
        n = fingers if fingers is not None else good_finger_count(dev, tech)
        return generate_mosfet(dev, tech, n)
    if isinstance(dev, Resistor):
        return generate_resistor(dev, tech)
    if isinstance(dev, Capacitor):
        return generate_capacitor(dev, tech)
    raise TypeError(
        f"no layout generator for device type {type(dev).__name__}")


def generate_stack_layout(stack, tech: Technology = DEFAULT_TECH,
                          name: str | None = None) -> DeviceLayout:
    """Merged layout of a diffusion-sharing stack (§3.1 stacking phase).

    The devices of a :class:`~repro.layout.stacking.Stack` share their
    adjacent source/drain regions: an n-device stack has n+1 contacted
    regions instead of 2n — the junction-capacitance saving that motivates
    stacking.  Gates get per-device ports (``g_<device>``); each junction
    region carries a port named after its net (first occurrence).
    """
    devices = stack.devices
    if not devices:
        raise ValueError("empty stack")
    first = devices[0]
    total_w_nm = int(round(first.w * first.m * 1e9))
    finger_w = max(total_w_nm, tech.min_width_diff)
    diff_layer = LAYER_NDIFF if first.model.is_nmos else LAYER_PDIFF
    cell = Cell(name or f"stack_{'_'.join(d.name for d in devices)}")
    sd_w = tech.diff_contact_pitch
    x = 0
    region_ports: dict[str, Rect] = {}
    gate_rects: list[tuple[str, Rect]] = []
    for i, dev in enumerate(devices):
        l_nm = max(int(round(dev.l * 1e9)), tech.min_width_poly)
        region = Rect(x, 0, x + sd_w, finger_w)
        net = stack.nets[i]
        _contact_stack(cell, tech, region, net)
        region_ports.setdefault(net, region)
        x += sd_w
        overhang = tech.gate_overhang
        gate = Rect(x, -overhang, x + l_nm, finger_w + overhang)
        cell.add_shape(LAYER_POLY, gate, dev.gate)
        gate_rects.append((dev.name, Rect(x, finger_w, x + l_nm,
                                          finger_w + overhang)))
        x += l_nm
    last_region = Rect(x, 0, x + sd_w, finger_w)
    last_net = stack.nets[-1]
    _contact_stack(cell, tech, last_region, last_net)
    region_ports.setdefault(last_net, last_region)
    x += sd_w
    cell.add_shape(diff_layer, Rect(0, 0, x, finger_w))
    if not first.model.is_nmos:
        cell.add_shape(LAYER_NWELL,
                       Rect(0, 0, x, finger_w).expanded(tech.well_margin))

    port_nets: dict[str, str] = {}
    for dev_name, rect in gate_rects:
        dev = next(d for d in devices if d.name == dev_name)
        cell.add_port(f"g_{dev_name}", LAYER_POLY, rect, dev.gate)
        port_nets[f"g_{dev_name}"] = dev.gate
    for net, rect in region_ports.items():
        port_name = f"n_{net}".replace(".", "_")
        if port_name not in cell.ports:
            cell.add_port(port_name, LAYER_METAL1, rect, net)
            port_nets[port_name] = net
    return DeviceLayout(
        cell=cell,
        device_name=cell.name,
        kind="stack",
        port_nets=port_nets,
        left_net=stack.nets[0],
        right_net=stack.nets[-1],
        fingers=len(devices),
    )


def matched_pair(dev_a: Mosfet, dev_b: Mosfet,
                 tech: Technology = DEFAULT_TECH,
                 fingers: int = 2) -> tuple[DeviceLayout, DeviceLayout]:
    """Generate two devices with identical geometry for matching.

    Both get the same finger count and finger width (taken from the first
    device), the precondition for symmetric placement.
    """
    la = generate_mosfet(dev_a, tech, fingers)
    lb = generate_mosfet(dev_b, tech, fingers)
    return la, lb
