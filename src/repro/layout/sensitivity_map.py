"""Performance-to-parasitic constraint mapping [Choudhury & S-V, TCAD'93].

The "critical glue" of §3.1: given (a) the sensitivities of each circuit
performance to each candidate layout parasitic and (b) the allowed
performance degradation, compute *bounds on the individual parasitics*
that the placer/router can then enforce locally.

The original casts this as a nonlinear program maximizing layout
flexibility subject to Σ |S_ij|·ΔC_j ≤ ΔP_i for every performance i.  We
solve exactly that with ``scipy.optimize.linprog``: maximize Σ w_j·c_j
(weighted total allowed parasitic = router freedom) subject to the
first-order degradation constraints and per-net minimums (no bound can be
below what any route at all would add).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog


class MappingError(ValueError):
    """Raised when no bound assignment can satisfy the degradations."""


@dataclass
class ParasiticBound:
    name: str            # net or net-pair identifier
    bound: float         # maximum allowed capacitance (F)


@dataclass
class ConstraintMap:
    bounds: dict[str, float]

    def bound_for(self, name: str, default: float = float("inf")) -> float:
        return self.bounds.get(name, default)


def map_constraints(sensitivities: dict[str, dict[str, float]],
                    allowed_degradation: dict[str, float],
                    min_bound: float = 1e-16,
                    weights: dict[str, float] | None = None) -> ConstraintMap:
    """Distribute performance budgets over parasitic bounds.

    Parameters
    ----------
    sensitivities:
        ``{performance: {parasitic_name: dPerf/dCap}}`` — first-order
        sensitivities (any sign; magnitudes are used).
    allowed_degradation:
        ``{performance: ΔP_max}`` — how much each performance may move.
    min_bound:
        Feasibility floor: every parasitic must be allowed at least this
        much (a router cannot add less than one grid cell of wire).
    weights:
        Optional per-parasitic priority (larger weight → the LP gives that
        parasitic a larger share of the budget).

    Returns the per-parasitic capacitance bounds.
    """
    parasitic_names = sorted({p for row in sensitivities.values()
                              for p in row})
    if not parasitic_names:
        return ConstraintMap({})
    n = len(parasitic_names)
    idx = {p: j for j, p in enumerate(parasitic_names)}

    a_ub = []
    b_ub = []
    for perf, row in sensitivities.items():
        if perf not in allowed_degradation:
            continue
        coeffs = np.zeros(n)
        for p, s in row.items():
            coeffs[idx[p]] = abs(s)
        a_ub.append(coeffs)
        b_ub.append(allowed_degradation[perf])
    w = np.ones(n)
    if weights:
        for p, weight in weights.items():
            if p in idx:
                w[idx[p]] = weight
    # linprog minimizes: maximize Σ w·c  →  minimize -Σ w·c.
    result = linprog(
        c=-w,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        bounds=[(min_bound, None)] * n,
        method="highs",
    )
    if not result.success:
        raise MappingError(
            "no feasible parasitic-bound assignment: the allowed "
            "performance degradations are too tight for the minimum "
            "routable parasitics")
    bounds = {p: float(result.x[idx[p]]) for p in parasitic_names}
    return ConstraintMap(bounds)


def sensitivities_from_circuit(circuit, performance_fn,
                               nets: list[str],
                               probe_cap: float = 10e-15) -> dict[str, float]:
    """Measure dPerf/dC_net by adding a probe capacitor per net.

    The finite-difference analogue of the adjoint computation in
    :mod:`repro.analysis.sensitivity`, usable with any scalar performance
    function (gain, GBW, phase margin...).
    """
    from repro.circuits.devices import Capacitor
    base = performance_fn(circuit)
    out: dict[str, float] = {}
    for net in nets:
        probed = circuit.copy()
        probed.add(Capacitor(f"cprobe_{net}", (net, "0"), probe_cap))
        perturbed = performance_fn(probed)
        out[net] = (perturbed - base) / probe_cap
    return out


def verify_bounds(extraction, cmap: ConstraintMap) -> dict[str, bool]:
    """Check an extracted layout against mapped bounds (router audit)."""
    verdicts = {}
    for net, para in extraction.nets.items():
        bound = cmap.bound_for(net)
        verdicts[net] = para.cap_total <= bound
    return verdicts
