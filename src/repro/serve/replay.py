"""Deterministic replay of a recorded request stream.

The broker keeps a structured request log (and can dump it as JSONL via
:meth:`Broker.write_request_trace`): one record per request with its
point, priority, outcome, and — for completed requests — a structural
digest of the result.  :func:`replay` re-issues the completed requests
*serially* against the registered workloads and asserts the digests
match.  This is the serving layer's determinism oath: batching order,
micro-batch composition, thread scheduling, and client interleaving must
never change what a request computes — only when it computes.

Digests go through :func:`repro.engine.cache.canonical_key`, the same
canonical encoding the cache keys use, so a digest mismatch means a real
value difference, not a formatting one.  :class:`EvalFailure` results
are digested over their stable fields (``elapsed_s`` excluded — the
failure identity, not its wall-clock).

Replay requires points that survive a JSON round-trip when replaying
from a file on disk; in-memory replay (passing ``Broker.request_log``
directly) has no such restriction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.engine.cache import canonical_key
from repro.engine.faults import EvalFailure, is_failure


def result_digest(value: Any) -> str:
    """Structural digest of an evaluation result.

    Failures digest over their stable identity (type, message, attempts,
    token, retryable); ordinary results over their canonical encoding.
    """
    if is_failure(value):
        return canonical_key("eval-failure", value.exception_type,
                             value.message, value.attempts, value.token,
                             value.retryable)
    return canonical_key("result", value)


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay` pass."""

    total: int = 0            # records read
    replayed: int = 0         # completed records re-evaluated
    matched: int = 0
    mismatched: list[dict] = field(default_factory=list)
    skipped: int = 0          # rejected/expired/cancelled/errored records

    @property
    def ok(self) -> bool:
        return not self.mismatched

    def assert_ok(self) -> None:
        if self.mismatched:
            first = self.mismatched[0]
            raise AssertionError(
                f"replay diverged on {len(self.mismatched)} of "
                f"{self.replayed} request(s); first: seq={first['seq']} "
                f"workload={first['workload']!r} recorded="
                f"{first['recorded']} replayed={first['replayed']}")

    def as_dict(self) -> dict:
        return {"total": self.total, "replayed": self.replayed,
                "matched": self.matched, "skipped": self.skipped,
                "mismatched": list(self.mismatched), "ok": self.ok}


def _load_records(trace: Any) -> list[dict]:
    """Load one trace — or merge several.

    A ``str``/``Path`` reads one JSONL file; an iterable of dicts is an
    in-memory trace.  An iterable whose elements are themselves traces
    (paths, or per-shard record lists) is a *multi-shard* request log:
    each sub-trace is loaded and the records are merged sorted by
    ``seq`` (recordless rejections last), so replaying an N-shard
    fleet's logs is deterministic regardless of how the fleet split the
    work — the digest-equality oath then holds across any shard count.
    """
    if isinstance(trace, (str, Path)):
        import json
        with open(trace) as fh:
            return [json.loads(line) for line in fh if line.strip()]
    records = list(trace)
    if records and not all(isinstance(r, dict) for r in records):
        merged: list[dict] = []
        for sub in records:
            merged.extend(_load_records(sub))
        merged.sort(key=lambda r: (r.get("seq") is None, r.get("seq") or 0))
        return merged
    return records


def replay(trace: Any,
           workloads: dict[str, Callable[[Any], Any]],
           engine: Any = None) -> ReplayReport:
    """Re-issue a recorded request stream serially; compare digests.

    Parameters
    ----------
    trace:
        Path to a ``requests.jsonl`` written by
        :meth:`Broker.write_request_trace` (the
        :class:`~repro.serve.shard.ShardRouter` writes the same format),
        an in-memory iterable of records (e.g. ``broker.request_log``),
        or a list of several such traces — the multi-shard case, merged
        by ``seq`` before replaying (see :func:`_load_records`).
    workloads:
        ``name -> fn`` mapping (a :class:`~repro.serve.broker.Workload`
        is accepted wherever a bare callable is).
    engine:
        Optional :class:`~repro.engine.EvaluationEngine` to evaluate
        through (exercising cache/retry exactly as the service did);
        defaults to calling each workload function directly.
    """
    report = ReplayReport()
    fns: dict[str, Callable[[Any], Any]] = {}
    for name, fn in workloads.items():
        fns[name] = getattr(fn, "fn", fn)
    for record in _load_records(trace):
        report.total += 1
        if record.get("outcome") != "completed":
            report.skipped += 1
            continue
        name = record["workload"]
        if name not in fns:
            raise KeyError(f"trace references unknown workload {name!r}")
        point = record["point"]
        if engine is not None:
            value = engine.map_evaluate(fns[name], [point])[0]
        else:
            try:
                value = fns[name](point)
            except Exception as exc:  # the service records failures as
                # values, so replay must too — a raising workload still
                # produces a comparable digest rather than killing replay.
                value = EvalFailure(exception_type=type(exc).__name__,
                                    message=str(exc))
        digest = result_digest(value)
        report.replayed += 1
        if digest == record.get("result_digest"):
            report.matched += 1
        else:
            report.mismatched.append({
                "seq": record.get("seq"), "workload": name,
                "recorded": record.get("result_digest"),
                "replayed": digest})
    return report
