"""Admission control: token buckets, queue bounds, explicit rejection.

A service that accepts every request dies by queueing: latency grows
without bound, deadlines pass silently, and the clients that caused the
overload are the last to notice.  The serving layer therefore refuses
work *at the front door*, loudly, with a structured
:class:`RejectedError` that names the reason — never a silent drop.  The
accounting invariant the smoke tests assert is::

    serve.requests == serve.admitted + serve.rejected
    serve.admitted == serve.completed + serve.expired + serve.cancelled
                      + serve.errored   (once the queues drain)

Two admission gates run at submit time, cheapest first:

* **queue depth** — each priority class's queue is bounded
  (``ServeConfig.max_queue_depth``); a submit against a full queue is
  backpressure, reason ``"queue_full"``;
* **rate limit** — a per-client :class:`TokenBucket`
  (``ServeConfig.rate`` / ``burst``); a client over its sustained rate is
  rejected with reason ``"rate_limited"`` while other clients continue
  unharmed.

Deadlines are the third, time-shifted gate: an admitted request that
outlives ``deadline_s`` is *expired* — skipped at dequeue and at
batch-assembly time by the broker, its waiter woken with
:class:`DeadlineExpiredError`, counted under ``serve.expired``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.config import ServeConfig


class RejectedError(RuntimeError):
    """The service refused a request at admission (backpressure).

    ``reason`` is one of ``"queue_full"``, ``"rate_limited"``,
    ``"quota_exceeded"`` (session-level), or ``"draining"`` (broker
    shutting down).  Clients are expected to back off and retry; the
    request was never queued.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"request rejected ({reason})"
                         + (f": {detail}" if detail else ""))
        self.reason = reason


class DeadlineExpiredError(RuntimeError):
    """An admitted request's deadline passed before it was dispatched."""


class RequestCancelledError(RuntimeError):
    """The client cancelled an admitted request before it was dispatched."""


@dataclass
class TokenBucket:
    """Classic token bucket: sustained ``rate``/s with ``burst`` headroom.

    Refill is computed lazily from the clock at each ``try_take`` — no
    background thread.  The ``clock`` is injectable so tests drive time
    explicitly instead of sleeping.
    """

    rate: float
    burst: float
    clock: Callable[[], float] = time.monotonic
    tokens: float = field(init=False)
    _last: float = field(init=False)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        self.tokens = float(self.burst)
        self._last = self.clock()

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False means rate-limited."""
        now = self.clock()
        self.tokens = min(float(self.burst),
                          self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class AdmissionController:
    """The broker's front door: queue bounds plus per-client buckets.

    Not thread-safe on its own — the broker calls :meth:`admit` with its
    lock held, which also serializes the ``serve.*`` counter updates the
    broker makes around it.
    """

    def __init__(self, config: ServeConfig,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def admit(self, client: str, queue_depth: int) -> None:
        """Raise :class:`RejectedError` unless the request may enqueue."""
        if queue_depth >= self.config.max_queue_depth:
            raise RejectedError(
                "queue_full",
                f"queue depth {queue_depth} >= "
                f"max_queue_depth {self.config.max_queue_depth}")
        if self.config.rate is None:
            return
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(rate=self.config.rate,
                                 burst=self.config.burst, clock=self.clock)
            self._buckets[client] = bucket
        if not bucket.try_take():
            raise RejectedError(
                "rate_limited",
                f"client {client!r} exceeded {self.config.rate}/s "
                f"(burst {self.config.burst})")
