"""Cross-shard content-addressed artifact store.

The disk layer of :class:`repro.engine.cache.EvalCache` already survives
across processes; the :class:`SharedStore` promotes that layer into the
fleet's shared substrate.  Every shard of a :class:`repro.serve.ShardRouter`
mounts the same store directory as its engine's disk cache, so a result
computed on shard 2 is a disk hit on shard 5 — the store is the only
state the shards share, and it is append-mostly content-addressed data,
which is why sharding needs no coordination protocol beyond the
filesystem.

Safety rests on two properties inherited from the cache layer:

* **Atomic publishes.**  Writes go through
  :func:`repro.engine.cache.publish_pickle` — a process-unique staging
  file renamed into place with ``os.replace`` — so a reader never
  observes a partial artifact and racing writers of the same key both
  leave a complete value (the values are content-addressed: both renames
  carry the same bytes).
* **Content addressing.**  Keys come from
  :func:`repro.engine.cache.canonical_key`, a digest of what the
  simulator would actually see.  There is no invalidation: an artifact
  is immutable once published, so stale reads cannot exist.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Iterator

from repro.engine.cache import EvalCache, publish_pickle

_MISS = object()


class SharedStore:
    """Content-addressed pickle store shared by any number of processes.

    A thin, explicit surface over one directory of ``<key>.pkl``
    artifacts.  Shards normally touch it only indirectly — through the
    :class:`~repro.engine.cache.EvalCache` built by :meth:`make_cache` —
    but the direct :meth:`get` / :meth:`put` surface is what replay and
    the tests use to assert cross-shard visibility.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- direct surface ------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Publish ``value`` under ``key`` (atomic, last-writer-wins)."""
        publish_pickle(self._path(key), value)

    def get(self, key: str, default: Any = None) -> Any:
        """Read the artifact for ``key``; ``default`` when absent.

        A file that vanishes or fails to unpickle mid-read (impossible
        for a completed publish, possible for a foreign/corrupt file
        dropped in the directory) reads as absent rather than raising.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return default

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    def keys(self) -> Iterator[str]:
        """Published keys, sorted.  Safe during concurrent publishes:
        staged temp files never match the ``*.pkl`` glob."""
        for path in sorted(self.root.glob("*.pkl")):
            yield path.stem

    # -- shard mounting ------------------------------------------------
    def make_cache(self, max_entries: int = 65536) -> EvalCache:
        """Build a shard-local :class:`EvalCache` backed by this store.

        Each shard gets its own in-memory LRU (private, per-process) on
        top of the shared disk layer; ``cache.stats.disk_hits`` on one
        shard counts results that some other process published.
        """
        return EvalCache(max_entries=max_entries, disk_dir=self.root)

    def report(self) -> dict:
        return {"root": str(self.root), "artifacts": len(self)}

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"
