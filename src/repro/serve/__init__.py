"""Batched synthesis-as-a-service over the evaluation engine.

The paper's frontends assume a designer (or a closed resynthesis loop)
driving synthesis interactively while characterization sweeps run in
bulk.  This package is the serving layer that makes one
:class:`~repro.engine.EvaluationEngine` safely shareable across those
tenants: a :class:`Broker` with priority queues and a dispatcher thread,
dynamic micro-batching into ``map_evaluate``
(:class:`~repro.serve.batching.MicroBatcher`), admission control with
token buckets and bounded queues
(:class:`~repro.serve.admission.AdmissionController`), per-request
deadlines and cancellation, client :class:`Session` objects with quotas
and streaming results, two HTTP facades — thread-per-request
(:mod:`repro.serve.http`) and asyncio (:mod:`repro.serve.http_async`) —
a typed :class:`ServeClient` over either, and deterministic
:func:`replay` of recorded request streams.

Past one broker, the layer scales *out*: a :class:`ShardRouter`
consistent-hashes requests onto N broker/engine worker processes
(supervised — crashed shards are respawned or condemned, their
in-flight requests re-routed or settled, never dropped) that share
results through a content-addressed :class:`SharedStore`.  Every
outcome is counted into the versioned report (``report()["serve"]``,
with a per-shard breakdown under ``serve.shards``) — nothing is ever
silently dropped, fleet-wide.
"""

from repro.engine.config import ServeConfig
from repro.serve.admission import (
    AdmissionController,
    DeadlineExpiredError,
    RejectedError,
    RequestCancelledError,
    TokenBucket,
)
from repro.serve.batching import MicroBatcher
from repro.serve.broker import PRIORITY_CLASSES, Broker, ResultHandle, Workload
from repro.serve.client import ClientHandle, RemoteEngineError, ServeClient
from repro.serve.http import ServeApp, ServeServer, make_server
from repro.serve.http_async import AsyncServeServer, make_async_server
from repro.serve.replay import ReplayReport, replay, result_digest
from repro.serve.session import Session
from repro.serve.shard import HashRing, ShardCrashError, ShardRouter
from repro.serve.store import SharedStore

__all__ = [
    "AdmissionController",
    "AsyncServeServer",
    "Broker",
    "ClientHandle",
    "DeadlineExpiredError",
    "HashRing",
    "MicroBatcher",
    "PRIORITY_CLASSES",
    "RejectedError",
    "RemoteEngineError",
    "ReplayReport",
    "RequestCancelledError",
    "ResultHandle",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "Session",
    "SharedStore",
    "ShardCrashError",
    "ShardRouter",
    "TokenBucket",
    "Workload",
    "make_async_server",
    "make_server",
    "replay",
    "result_digest",
]
