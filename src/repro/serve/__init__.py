"""Batched synthesis-as-a-service over the evaluation engine.

The paper's frontends assume a designer (or a closed resynthesis loop)
driving synthesis interactively while characterization sweeps run in
bulk.  This package is the serving layer that makes one
:class:`~repro.engine.EvaluationEngine` safely shareable across those
tenants: a :class:`Broker` with priority queues and a dispatcher thread,
dynamic micro-batching into ``map_evaluate``
(:class:`~repro.serve.batching.MicroBatcher`), admission control with
token buckets and bounded queues
(:class:`~repro.serve.admission.AdmissionController`), per-request
deadlines and cancellation, client :class:`Session` objects with quotas
and streaming results, a stdlib HTTP facade
(:mod:`repro.serve.http`), and deterministic :func:`replay` of recorded
request streams.  Every outcome is counted into the engine's versioned
report (``report()["serve"]``) — nothing is ever silently dropped.
"""

from repro.engine.config import ServeConfig
from repro.serve.admission import (
    AdmissionController,
    DeadlineExpiredError,
    RejectedError,
    RequestCancelledError,
    TokenBucket,
)
from repro.serve.batching import MicroBatcher
from repro.serve.broker import PRIORITY_CLASSES, Broker, ResultHandle, Workload
from repro.serve.http import ServeApp, ServeServer, make_server
from repro.serve.replay import ReplayReport, replay, result_digest
from repro.serve.session import Session

__all__ = [
    "AdmissionController",
    "Broker",
    "DeadlineExpiredError",
    "MicroBatcher",
    "PRIORITY_CLASSES",
    "RejectedError",
    "ReplayReport",
    "RequestCancelledError",
    "ResultHandle",
    "ServeApp",
    "ServeConfig",
    "ServeServer",
    "Session",
    "TokenBucket",
    "Workload",
    "make_server",
    "replay",
    "result_digest",
]
