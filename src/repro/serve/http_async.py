"""Asyncio front door: the same four endpoints, no thread per request.

``ThreadingHTTPServer`` (:mod:`repro.serve.http`) pins one OS thread per
in-flight connection, which caps a saturated ``/evaluate`` endpoint at
the thread budget long before the engine saturates.  This facade serves
the identical wire contract over ``asyncio.start_server``: one event
loop on one background thread holds *all* in-flight requests, each
parked on an :class:`asyncio.Future` that the backend resolves through
``handle.add_done_callback`` → ``loop.call_soon_threadsafe`` — the
broker/router completion callback is the wake-up, not a blocking wait.

Nothing engine-side changes: submission is the backend's ordinary
thread-safe ``submit``, and the outcome → status-code mapping is shared
with the legacy facade (:func:`repro.serve.http.terminal_reply`), so the
two front doors cannot drift apart.  The HTTP itself is a deliberately
minimal stdlib HTTP/1.1: request line + headers + Content-Length body,
keep-alive by default — exactly what the JSON endpoints need and
nothing more.

Works over a :class:`~repro.serve.broker.Broker` or a
:class:`~repro.serve.shard.ShardRouter`; the sharded smoke test and
benchmark run this front door.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from repro.serve.admission import RejectedError
from repro.serve.http import (
    ServeApp,
    _json_safe,  # noqa: F401  (re-exported for symmetry in tests)
    resolve_server_settings,
    terminal_reply,
)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 429: "Too Many Requests",
            500: "Internal Server Error", 504: "Gateway Timeout"}


class AsyncServeApp:
    """Async request routing over the sync :class:`ServeApp` contract.

    GETs are answered inline (report/healthz are quick, lock-bounded
    reads); POSTs submit synchronously — admission is deliberately a
    fast, synchronous refusal — then await the handle without blocking
    the loop.
    """

    def __init__(self, app: ServeApp):
        self.app = app

    async def handle(self, method: str, path: str,
                     body: bytes) -> tuple[int, dict]:
        if method == "GET":
            return self.app.handle_get(path)
        if method != "POST":
            return 400, {"error": f"unsupported method {method!r}"}
        try:
            payload = json.loads(body or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if path == "/evaluate":
            workload = payload.get("workload")
            if not isinstance(workload, str):
                return 400, {"error": "body must name a 'workload'"}
            return await self._run(workload, payload)
        if path == "/synthesize":
            if self.app.synthesize_workload is None:
                return 404, {"error": "no synthesis workload configured"}
            return await self._run(self.app.synthesize_workload, payload)
        return 404, {"error": f"unknown path {path!r}"}

    async def _run(self, workload: str, body: dict) -> tuple[int, dict]:
        broker = self.app.broker
        if "point" not in body:
            return 400, {"error": "body must carry a 'point'"}
        deadline_s = body.get("deadline_s")
        try:
            handle = broker.submit(
                workload, body["point"],
                client=str(body.get("client", "http")),
                priority=str(body.get("priority", "interactive")),
                deadline_s=deadline_s)
        except RejectedError as exc:
            return 429, {"error": str(exc), "reason": exc.reason}
        except (KeyError, ValueError, RuntimeError) as exc:
            return 400, {"error": str(exc)}
        timeout = body.get("timeout_s")
        if (timeout is None and deadline_s is None
                and broker.config.default_deadline_s is None):
            timeout = broker.config.http_max_wait_s
        loop = asyncio.get_running_loop()
        done: asyncio.Future = loop.create_future()

        def _resolve(_handle: Any) -> None:
            if not done.done():
                done.set_result(None)

        def _notify(h: Any) -> None:
            # Fires under the backend's lock (or immediately): just a
            # loop wake-up, the outcome is read from the handle after.
            # Must never raise — this runs inside the dispatcher's
            # callback chain, and the loop may already be closed if the
            # request settles after the front door shut down.
            try:
                loop.call_soon_threadsafe(_resolve, h)
            except RuntimeError:
                pass

        handle.add_done_callback(_notify)
        try:
            await asyncio.wait_for(asyncio.shield(done), timeout)
        except asyncio.TimeoutError as exc:
            if handle.outcome == "pending":
                return 504, {"error": "request still in flight",
                             "outcome": "pending"}
            del exc  # terminal outcome raced the timeout: fall through
        return terminal_reply(handle)


class AsyncServeServer:
    """Owns the event loop thread and the asyncio listener.

    Same lifecycle surface as :class:`~repro.serve.http.ServeServer`
    (``start`` / ``close`` / ``address`` / ``url`` / context manager) so
    tests and scripts can swap facades with one constructor change.
    ``port=0`` binds an ephemeral port, read back from ``address``.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0):
        self.app = app
        self._async_app = AsyncServeApp(app)
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AsyncServeServer":
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-http-async", daemon=True)
        self._thread.start()
        opened = asyncio.run_coroutine_threadsafe(
            asyncio.start_server(self._serve_connection, self._host,
                                 self._port),
            self._loop)
        self._server = opened.result(timeout=30)
        return self

    def close(self) -> None:
        if self._thread is None:
            return
        assert self._loop is not None

        async def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()

        asyncio.run_coroutine_threadsafe(
            _shutdown(), self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._thread = None
        self._loop = None
        self._server = None

    def __enter__(self) -> "AsyncServeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- loop side -----------------------------------------------------
    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        # Cancel whatever is still parked (client gone mid-request) so
        # the loop can close without "task was destroyed" noise.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    return
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    return
                method, path = parts[0], parts[1]
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._async_app.handle(
                    method, path, body)
                data = json.dumps(payload, sort_keys=True,
                                  default=repr).encode()
                head = (f"HTTP/1.1 {status} "
                        f"{_REASONS.get(status, 'Unknown')}\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        f"Connection: keep-alive\r\n\r\n")
                writer.write(head.encode("latin-1") + data)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    return
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.CancelledError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass


def make_async_server(broker: Any, host: str | None = None,
                      port: int | None = None,
                      synthesize_workload: str | None = None
                      ) -> AsyncServeServer:
    """Asyncio twin of :func:`repro.serve.http.make_server`.

    Settings come from the backend's :class:`ServeConfig`
    (``http_host`` / ``http_port`` / ``synthesize_workload``); the
    explicit kwargs are the deprecated legacy spelling, with the same
    both-at-once ``ValueError`` as the sync facade.
    """
    host, port, synthesize_workload = resolve_server_settings(
        broker, host, port, synthesize_workload, "make_async_server")
    return AsyncServeServer(ServeApp(broker, synthesize_workload),
                            host, port)
