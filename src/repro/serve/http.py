"""Thin stdlib HTTP facade over the broker.

Four endpoints, JSON in / JSON out, no framework:

* ``POST /evaluate`` — ``{"workload": name, "point": ..., "client":,
  "priority":, "deadline_s":, "timeout_s":}``; blocks until the request
  reaches a terminal state and returns the result (or the structured
  error).  Admission failures map to **429** with the rejection reason,
  deadline expiry to **504**, cancellation to **409**, a dispatcher-side
  engine error to **500** — backpressure is visible in the status code,
  never a hang or a silent drop.  A request that carries neither
  ``timeout_s`` nor any deadline is still bounded by the server-side
  ``ServeConfig.http_max_wait_s`` ceiling (504, ``outcome="pending"``),
  so idle clients cannot pin handler threads forever.
* ``POST /synthesize`` — same contract against the workload the app was
  constructed with as its synthesis entrypoint (the full
  sizing-loop-as-a-service shape from the ROADMAP).
* ``GET /healthz`` — liveness plus queue depths and registered
  workloads.
* ``GET /metrics`` — the engine's versioned report (``serve`` section,
  counters, cache stats), i.e. exactly what ``check_report`` validates.

The handler threads only touch the broker's thread-safe surface
(``submit`` and handle waits); everything engine-side stays on the
dispatcher thread.  ``ThreadingHTTPServer`` gives one thread per
in-flight connection, which is what a blocking ``/evaluate`` needs.

This thread-per-request server is the *compat* facade: the asyncio
front door (:mod:`repro.serve.http_async`) serves the same endpoints
with the same wire contract (shared via :func:`terminal_reply`) without
pinning a thread per in-flight request, and is what the sharded fleet
runs in front of.  Both facades work over a :class:`Broker` or a
:class:`~repro.serve.shard.ShardRouter` — the app only touches the
common backend surface.
"""

from __future__ import annotations

import json
import threading
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.engine.config import ServeConfig
from repro.engine.faults import is_failure
from repro.serve.admission import (
    DeadlineExpiredError,
    RejectedError,
    RequestCancelledError,
)
from repro.serve.broker import Broker


def _json_safe(value: Any) -> Any:
    if is_failure(value):
        return {"eval_failure": value.as_dict()}
    return value


def terminal_reply(handle: Any) -> tuple[int, dict]:
    """Map a *done* handle onto its ``(status, payload)`` wire shape.

    The one place the outcome → HTTP contract lives, shared by the
    thread-per-request facade and the asyncio front door
    (:mod:`repro.serve.http_async`) so the two can never drift: 504 for
    deadline expiry, 409 for cancellation, 500 for a dispatcher-side
    engine error, 200 with the (JSON-safe) result otherwise.
    """
    try:
        value = handle.result(timeout=0)
    except DeadlineExpiredError as exc:
        return 504, {"error": str(exc), "outcome": "expired"}
    except RequestCancelledError as exc:
        return 409, {"error": str(exc), "outcome": "cancelled"}
    except Exception as exc:
        # The dispatcher failed the batch with the engine's own
        # exception (handle.outcome == "errored").
        return 500, {"error": str(exc), "outcome": "errored"}
    return 200, {"outcome": "completed", "result": _json_safe(value)}


class ServeApp:
    """Routes HTTP requests onto a started :class:`Broker`.

    ``synthesize_workload`` names the registered workload that
    ``POST /synthesize`` runs; when omitted the endpoint answers 404.
    """

    def __init__(self, broker: Broker,
                 synthesize_workload: str | None = None):
        self.broker = broker
        self.synthesize_workload = synthesize_workload

    # Each handler returns (status_code, payload_dict).
    def handle_get(self, path: str) -> tuple[int, dict]:
        if path == "/healthz":
            return 200, self.broker.healthz()
        if path == "/metrics":
            return 200, self.broker.report()
        return 404, {"error": f"unknown path {path!r}"}

    def handle_post(self, path: str, body: dict) -> tuple[int, dict]:
        if path == "/evaluate":
            workload = body.get("workload")
            if not isinstance(workload, str):
                return 400, {"error": "body must name a 'workload'"}
            return self._run(workload, body)
        if path == "/synthesize":
            if self.synthesize_workload is None:
                return 404, {"error": "no synthesis workload configured"}
            return self._run(self.synthesize_workload, body)
        return 404, {"error": f"unknown path {path!r}"}

    def _run(self, workload: str, body: dict) -> tuple[int, dict]:
        if "point" not in body:
            return 400, {"error": "body must carry a 'point'"}
        deadline_s = body.get("deadline_s")
        try:
            handle = self.broker.submit(
                workload, body["point"],
                client=str(body.get("client", "http")),
                priority=str(body.get("priority", "interactive")),
                deadline_s=deadline_s)
        except RejectedError as exc:
            return 429, {"error": str(exc), "reason": exc.reason}
        except (KeyError, ValueError) as exc:
            return 400, {"error": str(exc)}
        timeout = body.get("timeout_s")
        if (timeout is None and deadline_s is None
                and self.broker.config.default_deadline_s is None):
            # Nothing else bounds this wait: apply the server-side
            # ceiling so a handler thread is never pinned forever.
            timeout = self.broker.config.http_max_wait_s
        try:
            handle.result(timeout=timeout)
        except TimeoutError as exc:
            if handle.outcome == "pending":
                # The *wait* timed out; the request itself is still live.
                return 504, {"error": str(exc), "outcome": "pending"}
        except Exception:
            pass  # terminal: mapped from the done handle below
        return terminal_reply(handle)


class _Handler(BaseHTTPRequestHandler):
    app: ServeApp  # set by make_server on the subclass

    # Silence per-request stderr logging; telemetry is the log.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _reply(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True, default=repr).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        status, payload = self.app.handle_get(self.path)
        self._reply(status, payload)

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
        except ValueError as exc:
            self._reply(400, {"error": f"invalid JSON body: {exc}"})
            return
        status, payload = self.app.handle_post(self.path, body)
        self._reply(status, payload)


class ServeServer:
    """Owns the HTTP listener thread; context manager for tests/CLIs.

    ``port=0`` binds an ephemeral port; read it back from ``address``.
    The server does not own the broker — close both, broker last, so
    in-flight requests drain before the engine goes away.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0):
        handler = type("BoundHandler", (_Handler,), {"app": app})
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serve-http", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


def resolve_server_settings(broker: Any, host: str | None,
                            port: int | None,
                            synthesize_workload: str | None,
                            caller: str) -> tuple[str, int, str | None]:
    """Shared kwarg-migration shim for the HTTP facades.

    The front-door settings now live on :class:`ServeConfig`
    (``http_host`` / ``http_port`` / ``synthesize_workload``) so one
    config object describes the whole service; the scattered
    ``make_server(...)`` kwargs keep working behind a
    ``DeprecationWarning``, and setting a knob both ways is a
    ``ValueError`` — the same migration pattern as
    :func:`repro.engine.config.resolve_flow_engine`.
    """
    config = getattr(broker, "config", None)
    if config is None:
        config = ServeConfig()
    legacy = {name: value for name, value in (
        ("host", host), ("port", port),
        ("synthesize_workload", synthesize_workload)) if value is not None}
    configured = (config.http_host != "127.0.0.1" or config.http_port != 0
                  or config.synthesize_workload is not None)
    if legacy and configured:
        raise ValueError(
            f"{caller}: pass the HTTP settings either on ServeConfig "
            f"(http_host/http_port/synthesize_workload) or as the legacy "
            f"kwargs, not both (got legacy {sorted(legacy)})")
    if legacy:
        warnings.warn(
            f"{caller}: the host=/port=/synthesize_workload= kwargs are "
            f"deprecated; set ServeConfig.http_host/http_port/"
            f"synthesize_workload instead",
            DeprecationWarning, stacklevel=3)
        return (str(legacy.get("host", "127.0.0.1")),
                int(legacy.get("port", 0)),
                legacy.get("synthesize_workload"))
    return config.http_host, config.http_port, config.synthesize_workload


def make_server(broker: Broker, host: str | None = None,
                port: int | None = None,
                synthesize_workload: str | None = None) -> ServeServer:
    """Convenience: wrap a started broker in a ready-to-start server.

    Reads ``http_host`` / ``http_port`` / ``synthesize_workload`` from
    the broker's :class:`ServeConfig`; the explicit kwargs are the
    deprecated legacy spelling (see :func:`resolve_server_settings`).
    """
    host, port, synthesize_workload = resolve_server_settings(
        broker, host, port, synthesize_workload, "make_server")
    return ServeServer(ServeApp(broker, synthesize_workload), host, port)
