"""Client sessions: identity, quota, and streaming results.

A :class:`Session` is the client-side convenience wrapper over a
:class:`~repro.serve.broker.Broker`: it pins the client id and priority
class (so per-client rate limits and fairness apply consistently),
enforces an optional submission quota, keeps track of every handle it
issued, and streams results back *in completion order* — the shape an
interactive tool wants ("show me each corner as it lands"), not
submission order.

Quota rejections are real rejections: they raise
:class:`~repro.serve.admission.RejectedError` with reason
``"quota_exceeded"`` and are counted under ``serve.rejected`` like any
front-door refusal, so the accounting invariant
(``requests == admitted + rejected``) keeps holding with sessions in
the picture.
"""

from __future__ import annotations

import queue
from typing import Any, Iterator

from repro.serve.admission import RejectedError
from repro.serve.broker import Broker, ResultHandle, Workload


class Session:
    """One client's view of the serving layer.

    Parameters
    ----------
    broker:
        The broker to submit through (must be started).
    client:
        Client identity — the admission controller's rate-limit key and
        the request log's attribution field.
    priority:
        Priority class for every submission (``"interactive"`` or
        ``"batch"``); individual submits may override.
    quota:
        Optional cap on total submissions through this session;
        exceeding it is a counted ``"quota_exceeded"`` rejection.
    deadline_s:
        Default relative deadline applied to submissions that do not
        carry their own.
    """

    def __init__(self, broker: Broker, client: str, *,
                 priority: str = "interactive",
                 quota: int | None = None,
                 deadline_s: float | None = None):
        if quota is not None and quota < 1:
            raise ValueError("quota must be >= 1 (or None)")
        self.broker = broker
        self.client = client
        self.priority = priority
        self.quota = quota
        self.deadline_s = deadline_s
        self.submitted = 0
        self.handles: list[ResultHandle] = []
        self._completed: "queue.Queue[ResultHandle]" = queue.Queue()

    # -- submission ----------------------------------------------------
    def submit(self, workload: str | Workload, point: Any, *,
               priority: str | None = None,
               deadline_s: float | None = None) -> ResultHandle:
        """Submit one request under this session's identity and quota."""
        if self.quota is not None and self.submitted >= self.quota:
            self.broker.count_client_reject(
                self.client, "quota_exceeded",
                workload if isinstance(workload, str) else workload.name)
            raise RejectedError(
                "quota_exceeded",
                f"session {self.client!r} used its quota of {self.quota}")
        handle = self.broker.submit(
            workload, point, client=self.client,
            priority=priority if priority is not None else self.priority,
            deadline_s=deadline_s if deadline_s is not None
            else self.deadline_s)
        self.submitted += 1
        self.handles.append(handle)
        handle.add_done_callback(self._completed.put)
        return handle

    def map(self, workload: str | Workload, points: Any,
            **kwargs: Any) -> list[ResultHandle]:
        """Submit many points; handles in submission order.

        Admission applies per point — a mid-list rejection propagates
        after the earlier points were admitted (they stay in flight).
        """
        return [self.submit(workload, p, **kwargs) for p in points]

    # -- streaming results ---------------------------------------------
    def results(self, timeout: float | None = None) -> Iterator[ResultHandle]:
        """Yield this session's handles as they reach a terminal state.

        Completion order, not submission order: expired and cancelled
        handles are yielded too (their ``result()`` raises), so callers
        see every admitted request exactly once.  ``timeout`` bounds the
        wait for *each next* handle; running out raises ``TimeoutError``
        with requests still in flight.
        """
        pending = len(self.handles)
        yielded = 0
        while yielded < pending:
            try:
                handle = self._completed.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"{pending - yielded} request(s) still in flight")
            yielded += 1
            yield handle
            pending = len(self.handles)  # submits during iteration count

    def cancel_pending(self) -> int:
        """Cancel every not-yet-dispatched request; returns how many."""
        return sum(1 for h in self.handles if h.cancel())

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An erroring client should not leave work queued on the shared
        # broker; a clean exit leaves in-flight requests to finish.
        if exc_type is not None:
            self.cancel_pending()
