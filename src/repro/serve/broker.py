"""The request broker: priority queues, dispatcher thread, batched dispatch.

This is the front door the ROADMAP's "serves heavy traffic" goal needs:
concurrent clients submit evaluation requests, the broker admits or
rejects them (:mod:`repro.serve.admission`), queues them per priority
class (``interactive`` ahead of ``batch``, with an anti-starvation
credit so bulk clients still progress), and a single dispatcher thread
drains the queues through the dynamic micro-batcher
(:mod:`repro.serve.batching`) into one
:meth:`~repro.engine.core.EvaluationEngine.map_evaluate` call per batch.
Caching, deduplication, fault injection, retries and tracing are all
inherited from the engine unchanged — the broker adds *when* and *with
whom* a request runs, never *how*.

Lifecycle of a request::

    submit ──admission──► queued ──dequeue──► batched ──execute──► done
       │rejected              │expired/cancelled (skipped at dequeue
       ▼                      ▼  and at batch-assembly time)
    RejectedError          waiter woken with the matching error

Every transition is counted (``serve.requests``, ``serve.admitted``,
``serve.rejected``, ``serve.expired``, ``serve.cancelled``,
``serve.errored``, ``serve.completed``, ``serve.batches``,
``serve.batched``, ``serve.batch_size.<n>``) and per-request latencies
are sampled into the engine telemetry, so ``engine.report()["serve"]``
— report schema v4 — states the whole story, percentiles included.
Nothing is ever silently dropped:
``admitted == completed + expired + cancelled + errored`` once the
queues drain (``errored`` is the dispatcher-side failure lane: the
engine call itself raised, and every request of that batch was failed
with the raising exception).

Threading model: client threads touch only ``submit``/``cancel`` (which
take the broker lock) and handle waits; the dispatcher thread is the
only one that runs the engine, bumps engine counters, and touches the
tracer — so an engine with a :class:`~repro.engine.trace.Tracer` records
a ``serve.batch`` span per dispatch with ``serve.request`` child spans
(queue-wait / batch-wait / execute phases) without any cross-thread
tracer access.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.config import EngineConfig, ServeConfig
from repro.engine.core import EvaluationEngine
from repro.serve.admission import (
    AdmissionController,
    DeadlineExpiredError,
    RejectedError,
    RequestCancelledError,
)
from repro.serve.batching import MicroBatcher
from repro.serve.replay import result_digest

#: Priority classes, highest first.  ``interactive`` is what a designer
#: sitting at a tool feels; ``batch`` is sweep/characterization traffic.
PRIORITY_CLASSES = ("interactive", "batch")


@dataclass(frozen=True)
class Workload:
    """A named evaluation the service offers.

    ``fn`` is the pure point → result mapping the engine executes;
    ``key_fn`` (optional) maps a point to its content-addressed cache
    key, exactly as :meth:`EvaluationEngine.map_evaluate` expects —
    with it, identical requests from different clients collapse onto one
    evaluation.  Two requests are batchable iff they name the same
    workload, which is what guarantees one ``fn`` per engine batch.

    ``batcher`` (optional) is a vectorized kernel implementing the
    three-member batcher protocol of ``map_evaluate`` (for circuit
    workloads, :class:`repro.synthesis.simulation_based.BatchEvaluator`):
    the micro-batches the broker already coalesces then additionally run
    symbolic-once/evaluate-many per same-topology group, with scalar
    fallback for anything the kernel declines.
    """

    name: str
    fn: Callable[[Any], Any]
    key_fn: Callable[[Any], str] | None = None
    batcher: Any = None


class ResultHandle:
    """A waitable slot for one request's outcome.

    ``result(timeout)`` blocks until the request completes (returning
    the evaluation result, :class:`~repro.engine.faults.EvalFailure`
    included — failures are values), or raises the terminal error:
    :class:`DeadlineExpiredError`, :class:`RequestCancelledError`, the
    engine-side exception for an ``"errored"`` batch, or
    ``TimeoutError`` if the wait itself runs out (the request stays
    in flight).  ``outcome`` is one of ``"pending"``, ``"completed"``,
    ``"expired"``, ``"cancelled"``, ``"errored"``.
    """

    def __init__(self, broker: "Broker", request: "_Request"):
        self._broker = broker
        self._request = request
        self._event = threading.Event()
        self._value: Any = None
        self._exc: BaseException | None = None
        self._callbacks: list[Callable[["ResultHandle"], None]] = []
        self.outcome = "pending"

    # -- client side ---------------------------------------------------
    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:
        """Cancel if still queued; False once dispatch claimed it."""
        return self._broker._cancel(self._request)

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        return self._exc

    def add_done_callback(self, fn: Callable[["ResultHandle"], None]) -> None:
        """Run ``fn(handle)`` once the request reaches a terminal state.

        Callbacks fire under the broker lock (or immediately, in the
        caller's thread, if already done) — keep them cheap, e.g. a
        queue put; sessions use this for completion-order streaming.
        """
        with self._broker._cond:
            if self._event.is_set():
                pending = False
            else:
                self._callbacks.append(fn)
                pending = True
        if not pending:
            fn(self)

    # -- broker side (lock held) ---------------------------------------
    def _complete(self, value: Any) -> None:
        self.outcome = "completed"
        self._value = value
        self._event.set()
        self._run_callbacks()

    def _fail(self, outcome: str, exc: BaseException) -> None:
        self.outcome = outcome
        self._exc = exc
        self._event.set()
        self._run_callbacks()

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


@dataclass
class _Request:
    """Internal queued-request record; timestamps are broker-clock."""

    seq: int
    workload: Workload
    point: Any
    client: str
    priority: str
    deadline: float | None          # absolute, broker clock
    deadline_s: float | None        # relative, as submitted (for the trace)
    t_submit: float
    handle: ResultHandle = field(init=False)
    t_dequeue: float | None = None
    claimed: bool = False
    cancelled: bool = False


class Broker:
    """Multi-tenant, batched synthesis-as-a-service over one engine.

    Parameters
    ----------
    engine:
        The shared :class:`EvaluationEngine` every batch runs through.
    config:
        :class:`~repro.engine.config.ServeConfig` knobs (batching,
        admission, fairness); defaults apply when omitted.
    clock:
        Injectable monotonic clock — deadline and batching tests drive
        time explicitly instead of sleeping.
    record_trace:
        Keep a structured request log (point, outcome, result digest)
        for :func:`repro.serve.replay` — bounded only by the run, so
        long-lived production brokers may switch it off.
    """

    def __init__(self, engine: EvaluationEngine,
                 config: ServeConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 record_trace: bool = True,
                 owns_engine: bool = False):
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.clock = clock
        self.record_trace = record_trace
        self._owns_engine = owns_engine
        self._admission = AdmissionController(self.config, clock)
        self._batcher = MicroBatcher(self.config, clock)
        self._workloads: dict[str, Workload] = {}
        self._queues: dict[str, list[_Request]] = {
            cls: [] for cls in PRIORITY_CLASSES}
        self._cond = threading.Condition()
        self._seq = 0
        self._consecutive_interactive = 0
        self._stopped = False
        self._drain_on_stop = True
        self._thread: threading.Thread | None = None
        self._t0 = clock()
        self.request_log: list[dict] = []
        # Surrogate corpus sidecar: with a corpus_dir configured, every
        # completed keyed request appends its cache key → point mapping,
        # making served traffic harvestable as surrogate training data
        # (repro.surrogate.harvest_cache).  Dispatcher thread only.
        self._corpus_index = None
        if self.config.corpus_dir is not None:
            from pathlib import Path

            from repro.surrogate.corpus import CorpusIndex
            self._corpus_index = CorpusIndex(
                Path(self.config.corpus_dir) / "corpus_index.jsonl")

    @classmethod
    def from_config(cls, config: EngineConfig | None = None,
                    **kwargs) -> "Broker":
        """Build engine and broker in one step; the broker owns the engine.

        The serve knobs come from ``config.serve``; ``"thread"`` is the
        natural executor for blocking workloads behind a service.
        """
        config = config if config is not None else EngineConfig()
        engine = EvaluationEngine.from_config(config)
        return cls(engine, config=config.serve, owns_engine=True, **kwargs)

    # -- registry ------------------------------------------------------
    def register(self, workload: Workload) -> Workload:
        if workload.name in self._workloads:
            raise ValueError(f"workload {workload.name!r} already registered")
        self._workloads[workload.name] = workload
        return workload

    @property
    def workloads(self) -> dict[str, Workload]:
        return dict(self._workloads)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Broker":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="serve-dispatcher", daemon=True)
            self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting; drain (default) or cancel queued requests."""
        with self._cond:
            self._stopped = True
            self._drain_on_stop = drain
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._cond:
            # Whatever is still queued (drain=False, or no dispatcher
            # ever ran): cancelled loudly, never silently dropped.
            for queue in self._queues.values():
                for req in queue:
                    self._dispose(req, "cancelled")
                queue.clear()
        if self._corpus_index is not None:
            self._corpus_index.close()
            self._corpus_index = None
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------
    def submit(self, workload: str | Workload, point: Any, *,
               client: str = "anon", priority: str = "interactive",
               deadline_s: float | None = None) -> ResultHandle:
        """Admit one request; returns a handle or raises RejectedError.

        ``priority`` must be one of :data:`PRIORITY_CLASSES`;
        ``deadline_s`` (relative) defaults to the config's
        ``default_deadline_s``.  Rejection is synchronous — a rejected
        request never occupies queue space.
        """
        if isinstance(workload, Workload):
            wl = self._workloads.get(workload.name)
            if wl is None:
                wl = self.register(workload)
            elif wl is not workload:
                raise ValueError(
                    f"workload name {workload.name!r} already bound to a "
                    f"different workload")
        else:
            wl = self._workloads.get(workload)
            if wl is None:
                raise KeyError(f"unknown workload {workload!r}")
        if priority not in PRIORITY_CLASSES:
            raise ValueError(f"priority must be one of {PRIORITY_CLASSES}, "
                             f"got {priority!r}")
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        tele = self.engine.telemetry
        with self._cond:
            tele.count("serve.requests")
            now = self.clock()
            try:
                if self._stopped:
                    raise RejectedError("draining", "broker is shutting down")
                self._admission.admit(client, len(self._queues[priority]))
            except RejectedError as exc:
                tele.count("serve.rejected")
                tele.count(f"serve.rejected.{exc.reason}")
                self._record(None, outcome="rejected", client=client,
                             workload=wl.name, priority=priority,
                             reason=exc.reason)
                raise
            tele.count("serve.admitted")
            self._seq += 1
            req = _Request(
                seq=self._seq, workload=wl, point=point, client=client,
                priority=priority,
                deadline=(now + deadline_s) if deadline_s is not None
                else None,
                deadline_s=deadline_s, t_submit=now)
            req.handle = ResultHandle(self, req)
            self._queues[priority].append(req)
            self._cond.notify_all()
            return req.handle

    def count_client_reject(self, client: str, reason: str,
                            workload: str | None = None) -> None:
        """Account a client-side rejection (e.g. session quota).

        Keeps the ``requests == admitted + rejected`` invariant honest
        for refusals that never reach :meth:`submit`.
        """
        tele = self.engine.telemetry
        with self._cond:
            tele.count("serve.requests")
            tele.count("serve.rejected")
            tele.count(f"serve.rejected.{reason}")
            self._record(None, outcome="rejected", client=client,
                         workload=workload, reason=reason)

    def _cancel(self, req: _Request) -> bool:
        with self._cond:
            if req.claimed or req.handle.done():
                return False
            req.cancelled = True
            self._dispose(req, "cancelled")
            # Leave the request in its queue; assembly's ready() check
            # discards already-disposed entries without re-counting.
            self._cond.notify_all()
            return True

    # -- introspection -------------------------------------------------
    def queue_depths(self) -> dict[str, int]:
        with self._cond:
            return {cls: len(q) for cls, q in self._queues.items()}

    def report(self) -> dict:
        """The engine's versioned report — ``serve`` section included."""
        return self.engine.report()

    def healthz(self) -> dict:
        depths = self.queue_depths()
        return {
            "status": "draining" if self._stopped else "ok",
            "uptime_s": self.clock() - self._t0,
            "queues": depths,
            "workloads": sorted(self._workloads),
        }

    def write_request_trace(self, path) -> None:
        """Dump the request log as JSONL for :func:`repro.serve.replay`."""
        import json
        from pathlib import Path
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._cond:
            records = list(self.request_log)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True, default=repr)
                         + "\n")

    # -- dispatcher ----------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and not self._has_work():
                    self._cond.wait()
                if self._stopped and (not self._drain_on_stop
                                      or not self._has_work()):
                    return
                cls = self._pick_class()
                first = self._pop_ready(cls)
                if first is None:
                    continue
                self._claim(first)
                batch = self._batcher.assemble(
                    self._cond, self._queues[cls], first,
                    compatible=lambda a, b: a.workload is b.workload,
                    ready=self._ready,
                    on_drop=lambda r, _where: self._claim_drop(r),
                    on_add=self._claim)
                t_assembled = self.clock()
            self._execute(batch, t_assembled)

    def _has_work(self) -> bool:
        return any(self._queues.values())

    def _pick_class(self) -> str:
        """Strict interactive priority with an anti-starvation credit.

        After ``interactive_burst`` consecutive interactive batches with
        batch-class work waiting, one batch-class batch is served — a
        saturating interactive client cannot starve bulk traffic, and
        vice versa strict priority keeps interactive latency flat under
        a saturating batch client.
        """
        interactive = self._queues["interactive"]
        bulk = self._queues["batch"]
        if interactive and bulk:
            if self._consecutive_interactive >= self.config.interactive_burst:
                self._consecutive_interactive = 0
                return "batch"
            self._consecutive_interactive += 1
            return "interactive"
        if interactive:
            self._consecutive_interactive += 1
            return "interactive"
        self._consecutive_interactive = 0
        return "batch"

    def _ready(self, req: _Request) -> bool:
        """Still worth dispatching?  Disposes expired entries as a side
        effect so the caller can drop them (cancelled ones were already
        disposed at cancel time)."""
        if req.cancelled or req.handle.done():
            return False
        if req.deadline is not None and self.clock() > req.deadline:
            self._dispose(req, "expired")
            return False
        return True

    def _pop_ready(self, cls: str) -> _Request | None:
        """Pop the queue head, discarding expired/cancelled entries."""
        queue = self._queues[cls]
        while queue:
            req = queue.pop(0)
            if self._ready(req):
                return req
        return None

    def _claim(self, req: _Request) -> None:
        req.claimed = True
        req.t_dequeue = self.clock()

    def _claim_drop(self, req: _Request) -> None:
        # Dropped at batch-assembly time: _ready already disposed it.
        req.claimed = True

    def _dispose(self, req: _Request, outcome: str) -> None:
        """Terminal non-completion (lock held): count, record, wake."""
        if req.handle.done():
            return
        tele = self.engine.telemetry
        tele.count(f"serve.{outcome}")
        if outcome == "expired":
            exc: BaseException = DeadlineExpiredError(
                f"deadline_s={req.deadline_s} passed in queue "
                f"(client {req.client!r}, workload {req.workload.name!r})")
        else:
            exc = RequestCancelledError(
                f"request cancelled (client {req.client!r}, "
                f"workload {req.workload.name!r})")
        req.handle._fail(outcome, exc)
        self._record(req, outcome=outcome)

    def _execute(self, batch: list[_Request], t_assembled: float) -> None:
        """One engine batch for one workload (dispatcher thread only)."""
        workload = batch[0].workload
        points = [r.point for r in batch]
        tracer = self.engine.tracer
        span_cm = (tracer.span("serve.batch") if tracer is not None
                   else None)
        if span_cm is not None:
            span_cm.__enter__()
        try:
            values = self.engine.map_evaluate(workload.fn, points,
                                              key_fn=workload.key_fn,
                                              batcher=workload.batcher)
        except BaseException as exc:
            # map_evaluate raising (no retry policy installed) must not
            # kill the dispatcher: fail the whole batch loudly — in its
            # own ``errored`` lane, so dispatcher-side failures stay
            # distinguishable from client cancellations in the counters
            # and the request log.
            if span_cm is not None:
                span_cm.__exit__(type(exc), exc, exc.__traceback__)
            with self._cond:
                for req in batch:
                    if req.handle.done():
                        continue  # already settled and counted elsewhere
                    self.engine.telemetry.count("serve.errored")
                    req.handle._fail("errored", exc)
                    self._record(req, outcome="errored")
            return
        if span_cm is not None:
            span_cm.__exit__(None, None, None)
        t_done = self.clock()
        tele = self.engine.telemetry
        with self._cond:
            tele.count("serve.batches")
            tele.count("serve.batched", len(batch))
            tele.count(f"serve.batch_size.{len(batch)}")
            completed = []
            for req, value in zip(batch, values):
                if req.handle.done():
                    continue  # already settled and counted elsewhere
                tele.count("serve.completed")
                tele.record_sample("serve.latency_s", t_done - req.t_submit)
                req.handle._complete(value)
                self._record(req, outcome="completed",
                             result_digest=result_digest(value))
                completed.append(req)
                if (self._corpus_index is not None
                        and workload.key_fn is not None
                        and isinstance(req.point, dict)):
                    try:
                        self._corpus_index.record(
                            workload.key_fn(req.point), req.point)
                    except (TypeError, ValueError):
                        pass  # unkeyable/unserializable point: no record
            if tracer is not None:
                self._trace_requests(tracer, completed, t_assembled, t_done)

    def _trace_requests(self, tracer, batch: list[_Request],
                        t_assembled: float, t_done: float) -> None:
        """One ``serve.request`` span (+ phase children) per request.

        The work already happened inside the ``serve.batch`` span, so
        the spans are recorded *pre-timed*: the durations come from the
        request's timestamps and are handed to ``tracer.span`` up front,
        which makes the ``span_end`` events and the span tree agree on
        every queue-wait / batch-wait / execute phase duration.
        """
        for req in batch:
            t_dequeue = req.t_dequeue if req.t_dequeue is not None \
                else t_assembled
            queue_wait = max(0.0, t_dequeue - req.t_submit)
            batch_wait = max(0.0, t_assembled - t_dequeue)
            execute = max(0.0, t_done - t_assembled)
            latency = max(0.0, t_done - req.t_submit)
            with tracer.span("serve.request", duration_s=latency):
                with tracer.span("queue_wait", duration_s=queue_wait):
                    pass
                with tracer.span("batch_wait", duration_s=batch_wait):
                    pass
                with tracer.span("execute", duration_s=execute):
                    pass
            tracer.event("serve.request", seq=req.seq, client=req.client,
                         workload=req.workload.name, priority=req.priority,
                         status="completed",
                         queue_wait_s=queue_wait,
                         batch_wait_s=batch_wait,
                         execute_s=execute,
                         latency_s=latency)

    # -- request log ---------------------------------------------------
    def _record(self, req: _Request | None, outcome: str,
                result_digest: str | None = None, **extra: Any) -> None:
        if not self.record_trace:
            return
        if req is not None:
            record = {
                "seq": req.seq, "client": req.client,
                "workload": req.workload.name, "priority": req.priority,
                "deadline_s": req.deadline_s, "point": req.point,
                "outcome": outcome, "result_digest": result_digest,
            }
        else:
            record = {"seq": None, "outcome": outcome,
                      "result_digest": None, **extra}
        self.request_log.append(record)
