"""Dynamic micro-batching: coalesce compatible requests, bounded wait.

The engine's whole design is batch-shaped — ``map_evaluate`` amortizes
dispatch, dedups identical cache keys within a batch, and ships one
executor round per call — but a service receives requests one at a time.
The micro-batcher bridges the two: when the dispatcher dequeues a
request, it holds the batch open up to ``max_wait_ms`` for more requests
of the *same workload* to arrive (or drains them immediately if they are
already queued), caps the batch at ``max_batch``, and hands the broker
one list to push through a single ``map_evaluate`` call.  Cache, fault,
retry and trace semantics are inherited unchanged, because the engine
cannot tell a coalesced service batch from an optimizer's generation.

The trade is explicit: ``max_wait_ms`` of added latency on the first
request of a batch buys up to ``max_batch``-fold dispatch amortization
for everyone in it.  Interactive classes run with small waits; bulk
classes can afford larger ones.

Assembly respects deadlines and cancellation: a request whose deadline
passed, or that was cancelled while queued, is dropped *at assembly
time* through the ``on_drop`` callback (the broker counts it and wakes
its waiter) and never occupies a batch slot.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.engine.config import ServeConfig


class MicroBatcher:
    """Coalesces compatible queued requests into one engine batch.

    ``clock`` is injectable for deterministic tests.  The batcher holds
    no lock of its own: :meth:`assemble` must be called with the broker's
    condition lock held, and it re-acquires-by-waiting on that same
    condition while the batch window is open, so submitters can append
    while the batcher sleeps.
    """

    def __init__(self, config: ServeConfig,
                 clock: Callable[[], float] = time.monotonic):
        self.max_batch = config.max_batch
        self.max_wait_s = config.max_wait_ms / 1000.0
        self.clock = clock

    def assemble(self, cond: threading.Condition, queue: list, first,
                 compatible: Callable, ready: Callable,
                 on_drop: Callable, on_add: Callable) -> list:
        """Build a batch around ``first`` from ``queue`` (cond held).

        ``compatible(a, b)`` says two requests may share a
        ``map_evaluate`` call (same workload); ``ready(r)`` says a
        request is still worth dispatching (not expired, not cancelled);
        ``on_drop(r, reason)`` disposes of one that is not;
        ``on_add(r)`` fires the moment a request joins the batch — the
        broker claims it there, so a cancel racing the open batch window
        loses exactly as it does against a dequeued request.  Compatible
        requests are removed from ``queue`` in FIFO order; incompatible
        ones stay untouched, in place, for a later batch.
        """
        batch = [first]
        deadline = self.clock() + self.max_wait_s
        while True:
            self._drain(queue, batch, compatible, ready, on_drop, on_add)
            if len(batch) >= self.max_batch:
                break
            remaining = deadline - self.clock()
            if remaining <= 0:
                break
            # Submitters notify this condition; a timeout just closes
            # the batch window with whatever arrived.
            cond.wait(timeout=remaining)
        return batch

    def _drain(self, queue: list, batch: list, compatible: Callable,
               ready: Callable, on_drop: Callable, on_add: Callable) -> None:
        i = 0
        while i < len(queue) and len(batch) < self.max_batch:
            req = queue[i]
            if not ready(req):
                queue.pop(i)
                on_drop(req, "assembly")
                continue
            if compatible(batch[0], req):
                queue.pop(i)
                on_add(req)
                batch.append(req)
                continue
            i += 1
