"""Horizontal sharding: a consistent-hash router over broker processes.

One :class:`~repro.serve.broker.Broker` is bounded by one dispatcher
thread and one GIL.  The :class:`ShardRouter` scales the serving layer
*out* instead of up: it consistent-hashes every request by its workload
digest onto one of N shard processes, each running a full private
broker + engine stack, and supervises the fleet the way
:class:`~repro.engine.executor.ParallelExecutor` supervises pool
workers — a crashed shard is respawned (bounded restarts) or condemned,
and its in-flight requests are re-routed once or settled ``errored``,
never dropped.

Design decisions, in order of importance:

* **Routing is a pure function of the request.**  The route key is
  :func:`repro.engine.cache.canonical_key` over ``(workload, point)`` —
  the same canonical encoding the evaluation cache uses — hashed onto a
  ring of virtual nodes built from the *sorted* shard ids.  Identical
  requests land on the same shard (preserving cross-client dedup), and
  the shard count can change *where* a request runs but never *what* it
  computes: the replay gate asserts digest equality across shard counts.
* **The router is the single admission and accounting authority.**
  Admission (queue bounds, per-client rate) runs router-side against
  the fleet-wide in-flight depth; shard brokers run with admission
  effectively disabled so a request admitted by the router is never
  second-guessed (a racing remote rejection settles in the ``errored``
  lane).  Every terminal outcome crosses the router, so the global
  zero-silent-drop invariant ``admitted == completed + expired +
  cancelled + errored`` is enforced from counters that survive any
  shard crash.
* **Shards share results, not memory.**  With
  ``ServeConfig.shared_store_dir`` set, every shard mounts the same
  :class:`~repro.serve.store.SharedStore` directory as its engine's
  disk cache layer — a result computed on shard 2 is a disk hit on
  shard 5, with no coordination beyond atomic write-then-rename
  publishes.

The wire between router and shard is one duplex pipe per shard carrying
plain tuples; results come back with their structural digest so the
request log the router keeps is directly replayable
(:func:`repro.serve.replay`).  Submission is fire-and-forget — no ack
round-trip — which is what keeps the N-shard saturation benchmark
scaling; the pipe is FIFO, so a ``cancel`` can never overtake its
``submit``.

Caveats, stated rather than hidden: a respawned shard starts with fresh
engine counters, so fleet *batching* statistics (``serve.batches``,
cache hit counts) are best-effort under crashes while the *outcome*
accounting is exact; and a re-routed request re-arms its relative
deadline at the new shard.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.engine.cache import EvalCache, canonical_key
from repro.engine.config import EngineConfig, ServeConfig
from repro.engine.schema import (
    REPORT_SCHEMA_VERSION,
    kernel_rollup,
    macro_rollup,
    serve_rollup,
    solver_rollup,
    surrogate_rollup,
    topogen_rollup,
)
from repro.engine.telemetry import Telemetry
from repro.serve.admission import AdmissionController, RejectedError
from repro.serve.broker import PRIORITY_CLASSES, Broker, ResultHandle, Workload
from repro.serve.replay import result_digest
from repro.serve.store import SharedStore


class ShardCrashError(RuntimeError):
    """A shard process died with this request in flight (post-reroute)."""


def route_key(workload: str, point: Any) -> str:
    """Content digest a request routes by: ``canonical_key`` over the
    workload name and the point, with a ``repr`` fallback for points the
    canonical encoder does not know (routing only needs determinism, not
    canonical equality)."""
    try:
        return canonical_key(workload, point)
    except TypeError:
        return canonical_key(workload, repr(point))


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Built from the *sorted, deduplicated* shard ids, so the mapping is a
    pure function of the id set — permuting the input order cannot move
    a single key (the property the hypothesis test pins).  ``replicas``
    virtual nodes per shard keep the load split within a few percent of
    uniform; removing a shard (``exclude``) reassigns only the keys it
    owned, which is the whole point of consistent hashing: a crash must
    not reshuffle the fleet.
    """

    def __init__(self, shard_ids, replicas: int = 256):
        ids = sorted(set(int(i) for i in shard_ids))
        if not ids:
            raise ValueError("HashRing needs at least one shard id")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_ids = ids
        self.replicas = replicas
        self._points = sorted(
            (self._hash(f"shard:{sid}:{r}"), sid)
            for sid in ids for r in range(replicas))
        self._keys = [h for h, _ in self._points]

    @staticmethod
    def _hash(text: str) -> int:
        return int(hashlib.sha256(text.encode()).hexdigest()[:16], 16)

    def route(self, digest: str, exclude=frozenset()) -> int:
        """Owning shard id for ``digest``, skipping ``exclude``\\d shards.

        Raises :class:`ShardCrashError` when every shard is excluded —
        the caller settles the request ``errored`` rather than looping.
        """
        pos = bisect.bisect_right(self._keys, self._hash(digest))
        n = len(self._points)
        for i in range(n):
            sid = self._points[(pos + i) % n][1]
            if sid not in exclude:
                return sid
        raise ShardCrashError("no live shards to route to")


# ----------------------------------------------------------------------
# Shard worker process
# ----------------------------------------------------------------------

def _shard_main(conn, shard_id: int, config: EngineConfig,
                workloads: dict[str, Workload]) -> None:
    """Entry point of one shard process: a broker serving one pipe.

    The main thread reads router messages; ``done`` replies are sent
    from the broker's dispatcher thread via completion callbacks, so a
    lock serializes writes to the pipe.  A result that cannot cross the
    pipe (unpicklable) settles ``errored`` with a transferable
    stand-in exception instead of killing the shard.
    """
    broker = Broker.from_config(config, record_trace=False)
    for wl in workloads.values():
        broker.register(wl)
    broker.start()
    send_lock = threading.Lock()
    handles: dict[int, ResultHandle] = {}

    def send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def send_done(seq: int, outcome: str, payload: Any,
                  digest: str | None) -> None:
        try:
            send(("done", seq, outcome, payload, digest))
        except Exception as exc:
            try:
                send(("done", seq, "errored", RuntimeError(
                    f"shard {shard_id}: result not transferable: "
                    f"{exc!r}"), None))
            except Exception:
                pass  # pipe gone: the router's crash handling takes over

    def on_done(seq: int, handle: ResultHandle) -> None:
        handles.pop(seq, None)
        if handle.outcome == "completed":
            value = handle.result(timeout=0)
            send_done(seq, "completed", value, result_digest(value))
        else:
            send_done(seq, handle.outcome, handle.exception(timeout=0), None)

    closed = False
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "submit":
            _, seq, name, point, client, priority, deadline_s = msg
            try:
                handle = broker.submit(name, point, client=client,
                                       priority=priority,
                                       deadline_s=deadline_s)
            except RejectedError as exc:
                send_done(seq, "rejected", exc, None)
                continue
            except Exception as exc:
                send_done(seq, "errored", exc, None)
                continue
            handles[seq] = handle
            handle.add_done_callback(lambda h, s=seq: on_done(s, h))
        elif kind == "cancel":
            handle = handles.get(msg[1])
            if handle is not None:
                handle.cancel()
        elif kind == "report":
            send(("report", broker.report()))
        elif kind == "crash":
            os._exit(13)  # test hook: die without cleanup, like a segfault
        elif kind == "close":
            broker.close(drain=msg[1])
            send(("closed", broker.report()))
            closed = True
            break
    if not closed:
        broker.close(drain=False)
    conn.close()


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------

_SHARD_OUTCOMES = ("routed", "rerouted", "completed", "expired",
                   "cancelled", "errored")

#: Shard-local counters the router's own (crash-proof) observations
#: replace in the merged fleet report; everything else a shard counts —
#: cache, solver, kernel, batching — is summed in as-is.
_ROUTER_OBSERVED = ("serve.requests", "serve.admitted", "serve.completed",
                    "serve.expired", "serve.cancelled", "serve.errored")


def _keep_shard_counter(name: str) -> bool:
    return name not in _ROUTER_OBSERVED \
        and not name.startswith("serve.rejected")


@dataclass
class _Shard:
    """Parent-side bookkeeping for one shard process."""

    id: int
    process: Any = None
    conn: Any = None
    reader: threading.Thread | None = None
    alive: bool = False
    condemned: bool = False
    closing: bool = False
    restarts: int = 0
    counters: dict[str, int] = field(default_factory=lambda: {
        k: 0 for k in _SHARD_OUTCOMES})
    replies: "queue.Queue" = field(default_factory=queue.Queue)
    last_report: dict | None = None


@dataclass
class _RouterRequest:
    """One in-flight request as the router sees it."""

    seq: int
    workload: str
    point: Any
    client: str
    priority: str
    deadline_s: float | None
    digest: str
    t_submit: float
    shard: int | None = None
    rerouted: bool = False
    handle: ResultHandle = field(init=False)


class ShardRouter:
    """Consistent-hash fleet of broker processes behind one submit surface.

    Drop-in for a :class:`Broker` wherever the serving facades need a
    backend: ``register`` / ``start`` / ``submit`` / ``healthz`` /
    ``report`` / ``request_log`` / ``write_request_trace`` / ``close``
    all exist with the same contracts, and ``submit`` returns the same
    :class:`ResultHandle`.  Two deliberate differences: workloads must
    be registered *before* :meth:`start` (shards inherit them at fork
    time), and ``handle.cancel()`` is best-effort — True means the
    cancel was sent, but dispatch on the shard may still win the race,
    in which case the handle completes normally.

    Parameters
    ----------
    config:
        :class:`EngineConfig` for the per-shard engines;
        ``config.serve`` supplies the fleet knobs (``shards``,
        ``shared_store_dir``) and the admission limits the router
        enforces fleet-wide.  Prefer ``cache=True`` over an
        :class:`EvalCache` instance — each shard builds its own cache,
        over the shared store when ``shared_store_dir`` is set.
    shards:
        Override for ``config.serve.shards``.
    max_restarts:
        Crash budget per shard before it is condemned for good.
    """

    def __init__(self, config: EngineConfig | None = None, *,
                 shards: int | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 record_trace: bool = True,
                 max_restarts: int = 2):
        engine_config = config if config is not None else EngineConfig()
        serve = engine_config.serve if engine_config.serve is not None \
            else ServeConfig()
        if shards is not None:
            serve = replace(serve, shards=shards)
        self.config = serve
        self.clock = clock
        self.record_trace = record_trace
        self.max_restarts = max_restarts
        # Shards never re-run admission: the router admitted fleet-wide,
        # so the shard queue bound only guards against router bugs (with
        # headroom) and per-client rate limiting stays router-side.  The
        # corpus sidecar is disabled per-shard — it is an append-only
        # single-writer file; harvest the shared store instead.
        shard_serve = replace(serve, shards=1, rate=None,
                              max_queue_depth=2 * serve.max_queue_depth + 64,
                              corpus_dir=None)
        self._shard_config = replace(engine_config, serve=shard_serve)
        self.store: SharedStore | None = None
        if serve.shared_store_dir is not None:
            self.store = SharedStore(serve.shared_store_dir)
            if not isinstance(self._shard_config.cache, EvalCache):
                self._shard_config.cache = True
            self._shard_config.disk_cache_dir = serve.shared_store_dir
        self._shards = [_Shard(id=i) for i in range(serve.shards)]
        self._ring = HashRing(range(serve.shards))
        self._cond = threading.Condition()
        self._telemetry = Telemetry()
        self._admission = AdmissionController(serve, clock)
        self._workloads: dict[str, Workload] = {}
        self._inflight: dict[int, _RouterRequest] = {}
        self._depths = {cls: 0 for cls in PRIORITY_CLASSES}
        self._seq = 0
        self._started = False
        self._stopped = False
        self._closed = False
        self._t0 = clock()
        self._ask_lock = threading.Lock()
        self.request_log: list[dict] = []

    @classmethod
    def from_config(cls, config: EngineConfig | None = None,
                    **kwargs) -> "ShardRouter":
        """Symmetry with :meth:`Broker.from_config`; the router always
        owns its (per-shard) engines, so this is just the constructor."""
        return cls(config, **kwargs)

    # -- registry ------------------------------------------------------
    def register(self, workload: Workload) -> Workload:
        with self._cond:
            if self._started:
                raise RuntimeError(
                    "register() before start(): shards inherit the "
                    "workload registry at fork time")
            if workload.name in self._workloads:
                raise ValueError(
                    f"workload {workload.name!r} already registered")
            self._workloads[workload.name] = workload
            return workload

    @property
    def workloads(self) -> dict[str, Workload]:
        return dict(self._workloads)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ShardRouter":
        with self._cond:
            if not self._started:
                self._started = True
                for shard in self._shards:
                    self._spawn(shard)
        return self

    def close(self, drain: bool = True) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._stopped = True
            live = []
            for shard in self._shards:
                shard.closing = True
                if self._send(shard, ("close", bool(drain))):
                    live.append(shard)
        for shard in live:
            try:
                kind, report = shard.replies.get(timeout=60)
                if kind == "closed":
                    shard.last_report = report
            except queue.Empty:
                pass
            if shard.process is not None:
                shard.process.join(timeout=10)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=10)
            if shard.conn is not None:
                shard.conn.close()
            if shard.reader is not None:
                shard.reader.join(timeout=10)
        with self._cond:
            # Anything not settled by the drain (condemned shards,
            # drain=False stragglers): cancelled loudly, never dropped.
            for rec in list(self._inflight.values()):
                self._settle_local(rec, "cancelled", RuntimeError(
                    "router closed with request in flight"))

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------
    def submit(self, workload: str | Workload, point: Any, *,
               client: str = "anon", priority: str = "interactive",
               deadline_s: float | None = None) -> ResultHandle:
        """Admit and route one request; same contract as
        :meth:`Broker.submit` (fleet-wide admission, consistent-hash
        placement)."""
        if isinstance(workload, Workload):
            wl = self._workloads.get(workload.name)
            if wl is None:
                wl = self.register(workload)  # raises once started
            elif wl is not workload:
                raise ValueError(
                    f"workload name {workload.name!r} already bound to a "
                    f"different workload")
            name = wl.name
        else:
            if workload not in self._workloads:
                raise KeyError(f"unknown workload {workload!r}")
            name = workload
        if priority not in PRIORITY_CLASSES:
            raise ValueError(f"priority must be one of {PRIORITY_CLASSES}, "
                             f"got {priority!r}")
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        digest = route_key(name, point)
        with self._cond:
            if not self._started:
                raise RuntimeError("ShardRouter.submit() before start()")
            self._telemetry.count("serve.requests")
            try:
                if self._stopped:
                    raise RejectedError("draining", "router is shutting down")
                self._admission.admit(client, self._inflight_depth(priority))
            except RejectedError as exc:
                self._telemetry.count("serve.rejected")
                self._telemetry.count(f"serve.rejected.{exc.reason}")
                self._record(None, outcome="rejected", client=client,
                             workload=name, priority=priority,
                             reason=exc.reason)
                raise
            self._telemetry.count("serve.admitted")
            self._seq += 1
            rec = _RouterRequest(
                seq=self._seq, workload=name, point=point, client=client,
                priority=priority, deadline_s=deadline_s, digest=digest,
                t_submit=self.clock())
            rec.handle = ResultHandle(self, rec)
            self._inflight[rec.seq] = rec
            self._depths[priority] += 1
            self._dispatch(rec, exclude=frozenset())
            return rec.handle

    def count_client_reject(self, client: str, reason: str,
                            workload: str | None = None) -> None:
        """Same contract as :meth:`Broker.count_client_reject`."""
        with self._cond:
            self._telemetry.count("serve.requests")
            self._telemetry.count("serve.rejected")
            self._telemetry.count(f"serve.rejected.{reason}")
            self._record(None, outcome="rejected", client=client,
                         workload=workload, reason=reason)

    def _cancel(self, rec: _RouterRequest) -> bool:
        """Best-effort cancel: True means the cancel reached the wire."""
        with self._cond:
            if rec.handle.done() or rec.shard is None:
                return False
            return self._send(self._shards[rec.shard], ("cancel", rec.seq))

    # -- introspection -------------------------------------------------
    def queue_depths(self) -> dict[str, int]:
        """Fleet-wide in-flight requests per priority class (the depth
        the router's admission gate bounds)."""
        with self._cond:
            return {cls: self._inflight_depth(cls)
                    for cls in PRIORITY_CLASSES}

    def healthz(self) -> dict:
        with self._cond:
            inflight: dict[int, int] = {s.id: 0 for s in self._shards}
            for rec in self._inflight.values():
                if rec.shard is not None:
                    inflight[rec.shard] = inflight.get(rec.shard, 0) + 1
            return {
                "status": "draining" if self._stopped else "ok",
                "uptime_s": self.clock() - self._t0,
                "queues": {cls: self._inflight_depth(cls)
                           for cls in PRIORITY_CLASSES},
                "workloads": sorted(self._workloads),
                "shards": [{
                    "shard": s.id,
                    "alive": bool(s.alive),
                    "condemned": bool(s.condemned),
                    "restarts": s.restarts,
                    "inflight": inflight.get(s.id, 0),
                } for s in self._shards],
            }

    def report(self) -> dict:
        """Merged fleet report — schema v7, :func:`check_report`-clean.

        Outcome counters and latency percentiles are router-observed
        (exact under crashes); engine-side counters (cache, solver,
        kernel, batching) are summed from per-shard reports fetched over
        the pipe, falling back to each shard's last known report when it
        can no longer answer.  ``serve.shards`` carries the per-shard
        breakdown; its outcome columns sum to the fleet totals.
        """
        shard_reports = [self._shard_report(s) for s in self._shards]
        with self._cond:
            out = self._telemetry.report()
            latency = list(self._telemetry.sample_values("serve.latency_s"))
            breakdown = [{
                "shard": s.id,
                "condemned": bool(s.condemned),
                "restarts": s.restarts,
                **{k: s.counters[k] for k in _SHARD_OUTCOMES},
            } for s in self._shards]
        counters = out["counters"]
        timers = out["timers"]
        failures = out["failures"]
        caches = []
        for rep in shard_reports:
            if rep is None:
                continue
            for name, n in rep["counters"].items():
                if _keep_shard_counter(name):
                    counters[name] = counters.get(name, 0) + n
            for name, stat in rep["timers"].items():
                mine = timers.setdefault(
                    name, {"calls": 0, "total_s": 0.0, "mean_s": 0.0})
                mine["calls"] += stat["calls"]
                mine["total_s"] += stat["total_s"]
                mine["mean_s"] = (mine["total_s"] / mine["calls"]
                                  if mine["calls"] else 0.0)
            failures["total"] += rep["failures"]["total"]
            for name, n in rep["failures"]["by_type"].items():
                failures["by_type"][name] = \
                    failures["by_type"].get(name, 0) + n
            failures["records"].extend(rep["failures"]["records"])
            if rep.get("cache") is not None:
                caches.append(rep["cache"])
        out["schema_version"] = REPORT_SCHEMA_VERSION
        out["executor"] = {
            "mode": "sharded",
            "shards": len(self._shards),
            "condemned": sum(1 for s in self._shards if s.condemned),
            "restarts": sum(s.restarts for s in self._shards),
        }
        out["cache"] = self._merge_caches(caches)
        out["spans"] = []
        out["solver"] = solver_rollup(counters)
        out["serve"] = serve_rollup(counters, latency, shards=breakdown)
        out["surrogate"] = surrogate_rollup(counters)
        out["kernel"] = kernel_rollup(counters)
        out["topogen"] = topogen_rollup(counters)
        out["macro"] = macro_rollup(counters)
        return out

    def _merge_caches(self, caches: list[dict]) -> dict | None:
        if not caches:
            return None
        merged = {k: sum(c.get(k, 0) for c in caches)
                  for k in ("hits", "misses", "evictions", "disk_hits",
                            "failure_rejects", "entries")}
        lookups = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / lookups if lookups else 0.0
        merged["max_entries"] = sum(c.get("max_entries", 0) for c in caches)
        merged["disk_dir"] = str(self.store.root) if self.store else None
        return merged

    def write_request_trace(self, path) -> None:
        """Dump the router's request log as JSONL (replay-compatible;
        each record additionally names the shard that settled it)."""
        import json
        from pathlib import Path
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._cond:
            records = list(self.request_log)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True, default=repr)
                         + "\n")

    # -- internals: routing and settling (lock held) -------------------
    def _inflight_depth(self, priority: str) -> int:
        # Maintained incrementally at admit/settle: the admission gate
        # sits on the submit hot path, so this must not scan in-flight.
        return self._depths.get(priority, 0)

    def _dispatch(self, rec: _RouterRequest, exclude: frozenset) -> None:
        exclude = frozenset(exclude)
        while True:
            condemned = frozenset(
                s.id for s in self._shards if s.condemned or not s.alive)
            try:
                sid = self._ring.route(rec.digest, exclude | condemned)
            except ShardCrashError as exc:
                self._settle_local(rec, "errored", exc)
                return
            shard = self._shards[sid]
            rec.shard = sid
            if self._send(shard, ("submit", rec.seq, rec.workload,
                                  rec.point, rec.client, rec.priority,
                                  rec.deadline_s)):
                shard.counters["routed"] += 1
                return
            exclude = exclude | {sid}

    def _send(self, shard: _Shard, msg) -> bool:
        if not shard.alive or shard.conn is None:
            return False
        try:
            shard.conn.send(msg)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    def _settle(self, shard: _Shard, seq: int, outcome: str, payload: Any,
                digest: str | None) -> None:
        """A shard reported a terminal state (reader thread)."""
        with self._cond:
            rec = self._inflight.pop(seq, None)
            if rec is None:
                return
            self._depths[rec.priority] -= 1
            if rec.handle.done():
                return
            if outcome == "completed":
                self._telemetry.count("serve.completed")
                self._telemetry.record_sample(
                    "serve.latency_s", self.clock() - rec.t_submit)
                shard.counters["completed"] += 1
                self._record(rec, outcome="completed", result_digest=digest,
                             shard=shard.id)
                rec.handle._complete(payload)
                return
            # "rejected" only happens when a shard second-guesses the
            # router (bounded shard queue as a safety net): the request
            # *was* admitted, so it settles in the errored lane to keep
            # the global invariant exact.
            lane = outcome if outcome in ("expired", "cancelled") \
                else "errored"
            self._telemetry.count(f"serve.{lane}")
            shard.counters[lane] += 1
            exc = payload if isinstance(payload, BaseException) \
                else RuntimeError(f"shard {shard.id}: {payload!r}")
            self._record(rec, outcome=lane, shard=shard.id)
            rec.handle._fail(lane, exc)

    def _settle_local(self, rec: _RouterRequest, lane: str,
                      exc: BaseException) -> None:
        """Router-side terminal state (crash, no live shards, close)."""
        if self._inflight.pop(rec.seq, None) is not None:
            self._depths[rec.priority] -= 1
        if rec.handle.done():
            return
        self._telemetry.count(f"serve.{lane}")
        if rec.shard is not None:
            self._shards[rec.shard].counters[lane] += 1
        self._record(rec, outcome=lane,
                     shard=rec.shard if rec.shard is not None else None)
        rec.handle._fail(lane, exc)

    # -- internals: supervision ----------------------------------------
    def _spawn(self, shard: _Shard) -> None:
        """(Re)start one shard process (lock held).  Fork start method:
        fast, and the children inherit registered workload closures."""
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_shard_main,
            args=(child_conn, shard.id, self._shard_config,
                  dict(self._workloads)),
            name=f"serve-shard-{shard.id}", daemon=True)
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.alive = True
        shard.reader = threading.Thread(
            target=self._reader, args=(shard, parent_conn),
            name=f"serve-shard-{shard.id}-reader", daemon=True)
        shard.reader.start()

    def _reader(self, shard: _Shard, conn) -> None:
        """Per-shard reader: settles ``done`` messages, forwards
        report/closed replies, and triggers crash handling on EOF."""
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "done":
                self._settle(shard, *msg[1:])
            else:
                shard.replies.put(msg)
        self._on_shard_down(shard, conn)

    def _on_shard_down(self, shard: _Shard, conn) -> None:
        """The pipe to a shard died.  Condemn or respawn; re-route its
        in-flight requests once, settle them ``errored`` the second
        time.  Runs on the (old) reader thread."""
        with self._cond:
            if shard.conn is not conn:
                return  # stale reader of an already-respawned shard
            if shard.closing or self._closed:
                return  # orderly shutdown, not a crash
            shard.alive = False
            self._telemetry.count("serve.shard_crashes")
            orphans = [rec for rec in self._inflight.values()
                       if rec.shard == shard.id and not rec.handle.done()]
            if shard.restarts < self.max_restarts:
                shard.restarts += 1
                self._spawn(shard)
            else:
                shard.condemned = True
            for rec in orphans:
                if rec.rerouted:
                    self._settle_local(rec, "errored", ShardCrashError(
                        f"shard {shard.id} crashed twice with request "
                        f"seq={rec.seq} in flight"))
                else:
                    rec.rerouted = True
                    self._telemetry.count("serve.rerouted")
                    shard.counters["rerouted"] += 1
                    self._dispatch(rec, exclude=frozenset())
            self._cond.notify_all()

    def _shard_report(self, shard: _Shard) -> dict | None:
        """Fetch a shard's engine report, falling back to the last one
        it managed to send before dying."""
        with self._ask_lock:
            with self._cond:
                live = shard.alive and not shard.closing \
                    and self._send(shard, ("report",))
            if live:
                try:
                    kind, report = shard.replies.get(timeout=30)
                    if kind in ("report", "closed"):
                        shard.last_report = report
                except queue.Empty:
                    pass
            return shard.last_report

    # -- request log ---------------------------------------------------
    def _record(self, rec: _RouterRequest | None, outcome: str,
                result_digest: str | None = None,
                shard: int | None = None, **extra: Any) -> None:
        if not self.record_trace:
            return
        if rec is not None:
            record = {
                "seq": rec.seq, "client": rec.client,
                "workload": rec.workload, "priority": rec.priority,
                "deadline_s": rec.deadline_s, "point": rec.point,
                "outcome": outcome, "result_digest": result_digest,
                "shard": shard,
            }
        else:
            record = {"seq": None, "outcome": outcome,
                      "result_digest": None, "shard": shard, **extra}
        self.request_log.append(record)
