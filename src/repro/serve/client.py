"""Typed client for the serve HTTP facades.

Every consumer of the service so far hand-rolled ``urllib`` JSON calls
and re-derived the status-code contract; :class:`ServeClient` is the one
typed surface that does it right once.  The raw JSON endpoints are
unchanged — this is a client, not a protocol — but the *outcomes* come
back as the same structured exceptions the in-process broker raises:

========  ==================  ======================================
status    wire ``outcome``    raised client-side
========  ==================  ======================================
429       (rejection)         :class:`RejectedError` (reason kept)
504       ``expired``         :class:`DeadlineExpiredError`
504       ``pending``         :class:`TimeoutError` (request live)
409       ``cancelled``       :class:`RequestCancelledError`
500       ``errored``         :class:`RemoteEngineError`
400/404   (protocol)          ``ValueError`` / ``KeyError``
========  ==================  ======================================

so ``try: client.evaluate(...) except RejectedError:`` reads identically
whether the broker is in-process or across the wire.  Works against
both facades — thread-per-request (:mod:`repro.serve.http`) and asyncio
(:mod:`repro.serve.http_async`) — which the round-trip test pins.

``submit()`` gives the handle shape (``result`` / ``done`` /
``outcome``) over the blocking wire call by parking it on a daemon
thread; ``stream()`` fans a batch of points out and yields results in
completion order, mirroring :meth:`repro.serve.session.Session`.
"""

from __future__ import annotations

import json
import queue
import threading
import urllib.error
import urllib.request
from typing import Any, Iterable, Iterator

from repro.serve.admission import (
    DeadlineExpiredError,
    RejectedError,
    RequestCancelledError,
)


class RemoteEngineError(RuntimeError):
    """The service's dispatcher failed the batch engine-side (HTTP 500)."""


def _raise_for(status: int, payload: dict) -> None:
    """Map one non-200 reply onto its structured exception."""
    error = str(payload.get("error", f"HTTP {status}"))
    outcome = payload.get("outcome")
    if status == 429:
        raise RejectedError(str(payload.get("reason", "rejected")), error)
    if status == 504 and outcome == "expired":
        raise DeadlineExpiredError(error)
    if status == 504:
        raise TimeoutError(error)
    if status == 409:
        raise RequestCancelledError(error)
    if status == 500:
        raise RemoteEngineError(error)
    if status == 404:
        raise KeyError(error)
    raise ValueError(error)


class ClientHandle:
    """Wire-call twin of :class:`~repro.serve.broker.ResultHandle`.

    ``result(timeout)`` blocks until the underlying HTTP round trip
    finishes, then returns the value or raises the structured error;
    ``outcome`` mirrors the broker vocabulary (``pending`` /
    ``completed`` / ``expired`` / ``cancelled`` / ``errored`` /
    ``rejected``).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._exc: BaseException | None = None
        self.outcome = "pending"

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        return self._exc

    # -- client side ---------------------------------------------------
    def _settle(self, value: Any, exc: BaseException | None) -> None:
        if exc is None:
            self.outcome = "completed"
            self._value = value
        else:
            self._exc = exc
            self.outcome = {
                DeadlineExpiredError: "expired",
                RequestCancelledError: "cancelled",
                RejectedError: "rejected",
            }.get(type(exc), "errored")
        self._event.set()


class ServeClient:
    """Typed HTTP client for one serve endpoint.

    Parameters
    ----------
    url:
        Base URL of a running facade, e.g. ``server.url``.
    client:
        Client id sent with every request (admission accounting).
    timeout_s:
        Socket-level timeout per HTTP call; ``None`` waits as long as
        the server-side ceiling allows.
    """

    def __init__(self, url: str, *, client: str = "client",
                 timeout_s: float | None = None):
        self.url = url.rstrip("/")
        self.client = client
        self.timeout_s = timeout_s
        self._threads: list[threading.Thread] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Wait for outstanding :meth:`submit` threads to settle."""
        self._closed = True
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- wire ----------------------------------------------------------
    def _call(self, method: str, path: str,
              body: dict | None = None) -> tuple[int, dict]:
        data = None
        headers = {"Content-Type": "application/json"}
        if body is not None:
            data = json.dumps(body, sort_keys=True, default=repr).encode()
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as reply:
                return reply.status, json.loads(reply.read() or b"{}")
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            try:
                return exc.code, json.loads(payload or b"{}")
            except ValueError:
                return exc.code, {"error": payload.decode("latin-1")}

    def _evaluate_body(self, point: Any, priority: str,
                       deadline_s: float | None,
                       timeout_s: float | None) -> dict:
        body: dict[str, Any] = {"point": point, "client": self.client,
                                "priority": priority}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return body

    # -- typed surface -------------------------------------------------
    def evaluate(self, workload: str, point: Any, *,
                 priority: str = "interactive",
                 deadline_s: float | None = None,
                 timeout_s: float | None = None) -> Any:
        """One blocking ``POST /evaluate``; the result or a structured
        raise (see the module table)."""
        body = self._evaluate_body(point, priority, deadline_s, timeout_s)
        body["workload"] = workload
        status, payload = self._call("POST", "/evaluate", body)
        if status != 200:
            _raise_for(status, payload)
        return payload["result"]

    def synthesize(self, point: Any, *, priority: str = "batch",
                   deadline_s: float | None = None,
                   timeout_s: float | None = None) -> Any:
        """One blocking ``POST /synthesize`` against the configured
        synthesis workload."""
        body = self._evaluate_body(point, priority, deadline_s, timeout_s)
        status, payload = self._call("POST", "/synthesize", body)
        if status != 200:
            _raise_for(status, payload)
        return payload["result"]

    def submit(self, workload: str, point: Any, *,
               priority: str = "interactive",
               deadline_s: float | None = None,
               timeout_s: float | None = None) -> ClientHandle:
        """Non-blocking submit: the wire call runs on a daemon thread,
        the returned :class:`ClientHandle` settles when it lands."""
        if self._closed:
            raise RuntimeError("client is closed")
        handle = ClientHandle()

        def _run() -> None:
            try:
                value = self.evaluate(workload, point, priority=priority,
                                      deadline_s=deadline_s,
                                      timeout_s=timeout_s)
            except BaseException as exc:
                handle._settle(None, exc)
            else:
                handle._settle(value, None)

        thread = threading.Thread(target=_run, daemon=True,
                                  name="serve-client")
        self._threads.append(thread)
        thread.start()
        return handle

    def result(self, handle: ClientHandle,
               timeout: float | None = None) -> Any:
        """Convenience passthrough: ``client.result(h)`` == ``h.result()``."""
        return handle.result(timeout)

    def stream(self, workload: str, points: Iterable[Any], *,
               priority: str = "interactive",
               deadline_s: float | None = None,
               timeout_s: float | None = None
               ) -> Iterator[tuple[Any, str, Any]]:
        """Fan out ``points``; yield ``(point, outcome, value_or_exc)``
        in completion order.  Structured errors are *yielded* (outcome
        names the lane), not raised — a streaming consumer wants the
        whole batch, not the first failure."""
        settled: "queue.Queue" = queue.Queue()
        points = list(points)
        for point in points:
            handle = self.submit(workload, point, priority=priority,
                                 deadline_s=deadline_s, timeout_s=timeout_s)

            def _watch(h: ClientHandle = handle, p: Any = point) -> None:
                h._event.wait()
                settled.put((p, h.outcome,
                             h._exc if h._exc is not None else h._value))

            watcher = threading.Thread(target=_watch, daemon=True,
                                       name="serve-client-stream")
            self._threads.append(watcher)
            watcher.start()
        for _ in points:
            yield settled.get()

    # -- introspection -------------------------------------------------
    def healthz(self) -> dict:
        status, payload = self._call("GET", "/healthz")
        if status != 200:
            _raise_for(status, payload)
        return payload

    def metrics(self) -> dict:
        """The service's versioned engine report (``GET /metrics``)."""
        status, payload = self._call("GET", "/metrics")
        if status != 200:
            _raise_for(status, payload)
        return payload
