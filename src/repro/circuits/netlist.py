"""Circuit container: nets, devices, subcircuits and flattening.

A :class:`Circuit` is the common currency of the whole toolkit.  The
frontend sizes its devices, the simulator stamps it, the symbolic analyzer
linearizes it, and the backend reads its connectivity to place and route.

Hierarchy is supported through :class:`SubcktDef` definitions plus
``SubcktInstance`` devices, resolved by :meth:`Circuit.flattened` — the same
flatten-before-analysis model SPICE uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Device,
    Inductor,
    Mosfet,
    Resistor,
    SubcktInstance,
    VoltageSource,
)

GROUND = "0"


class NetlistError(ValueError):
    """Raised on malformed circuit construction or hierarchy resolution."""


@dataclass
class SubcktDef:
    """A subcircuit definition: external port names plus a body circuit."""

    name: str
    ports: tuple[str, ...]
    body: "Circuit"


@dataclass
class Circuit:
    """A named collection of devices with optional subcircuit definitions."""

    name: str = "circuit"
    devices: list[Device] = field(default_factory=list)
    subckts: dict[str, SubcktDef] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add(self, device: Device) -> Device:
        """Add a device; names must be unique within the circuit."""
        if any(d.name == device.name for d in self.devices):
            raise NetlistError(f"duplicate device name {device.name!r}")
        self.devices.append(device)
        return device

    def extend(self, devices: Iterable[Device]) -> None:
        for d in devices:
            self.add(d)

    def define_subckt(self, definition: SubcktDef) -> None:
        if definition.name in self.subckts:
            raise NetlistError(f"duplicate subckt {definition.name!r}")
        self.subckts[definition.name] = definition

    # shorthand element constructors -----------------------------------
    def resistor(self, name: str, n1: str, n2: str, value: float) -> Resistor:
        return self.add(Resistor(name, (n1, n2), value))  # type: ignore[return-value]

    def capacitor(self, name: str, n1: str, n2: str, value: float) -> Capacitor:
        return self.add(Capacitor(name, (n1, n2), value))  # type: ignore[return-value]

    def inductor(self, name: str, n1: str, n2: str, value: float) -> Inductor:
        return self.add(Inductor(name, (n1, n2), value))  # type: ignore[return-value]

    def vsource(self, name: str, plus: str, minus: str,
                dc: float = 0.0, ac: float = 0.0, waveform=None) -> VoltageSource:
        from repro.circuits.devices import Waveform
        wf = waveform if waveform is not None else Waveform()
        return self.add(VoltageSource(name, (plus, minus), dc, ac, wf))  # type: ignore[return-value]

    def isource(self, name: str, plus: str, minus: str,
                dc: float = 0.0, ac: float = 0.0, waveform=None) -> CurrentSource:
        from repro.circuits.devices import Waveform
        wf = waveform if waveform is not None else Waveform()
        return self.add(CurrentSource(name, (plus, minus), dc, ac, wf))  # type: ignore[return-value]

    def mosfet(self, name: str, d: str, g: str, s: str, b: str,
               model, w: float, l: float, m: int = 1) -> Mosfet:
        return self.add(Mosfet(name, (d, g, s, b), model, w, l, m))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nets(self) -> list[str]:
        """All net names, ground first if present, otherwise sorted by first use."""
        seen: dict[str, None] = {}
        for d in self.devices:
            for n in d.nodes:
                seen.setdefault(n, None)
        names = list(seen)
        if GROUND in seen:
            names.remove(GROUND)
            names.insert(0, GROUND)
        return names

    def device(self, name: str) -> Device:
        for d in self.devices:
            if d.name == name:
                return d
        raise KeyError(f"no device named {name!r} in circuit {self.name!r}")

    def devices_of_type(self, cls: type) -> list[Device]:
        return [d for d in self.devices if isinstance(d, cls)]

    @property
    def mosfets(self) -> list[Mosfet]:
        return self.devices_of_type(Mosfet)  # type: ignore[return-value]

    def connected_devices(self, net: str) -> list[Device]:
        return [d for d in self.devices if net in d.nodes]

    def replace_device(self, name: str, new_device: Device) -> None:
        for i, d in enumerate(self.devices):
            if d.name == name:
                self.devices[i] = new_device
                return
        raise KeyError(f"no device named {name!r}")

    def update_device(self, name: str, **changes) -> Device:
        """Replace fields of a device in place (devices are frozen dataclasses)."""
        current = self.device(name)
        updated = replace(current, **changes)  # type: ignore[type-var]
        self.replace_device(name, updated)
        return updated

    def copy(self) -> "Circuit":
        return Circuit(self.name, list(self.devices), dict(self.subckts))

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    def flattened(self, separator: str = ".") -> "Circuit":
        """Resolve all subcircuit instances into a flat device list.

        Internal nets and device names of an instance ``X1`` of subckt ``ota``
        become ``X1.net`` / ``X1.M1``; port nets map to the instance's
        connection nets.  Ground is never renamed.
        """
        flat = Circuit(self.name, [], {})
        self._flatten_into(flat, prefix="", separator=separator, depth=0)
        return flat

    def _flatten_into(self, flat: "Circuit", prefix: str,
                      separator: str, depth: int,
                      port_map: dict[str, str] | None = None) -> None:
        if depth > 50:
            raise NetlistError("subckt recursion deeper than 50 levels")
        port_map = port_map or {}
        for dev in self.devices:
            if isinstance(dev, SubcktInstance):
                definition = self._lookup_subckt(dev.subckt)
                if definition is None:
                    raise NetlistError(
                        f"instance {dev.name!r} references unknown subckt "
                        f"{dev.subckt!r}")
                if len(dev.nodes) != len(definition.ports):
                    raise NetlistError(
                        f"instance {dev.name!r}: {len(dev.nodes)} connections "
                        f"for {len(definition.ports)} ports of {dev.subckt!r}")
                inner_prefix = prefix + dev.name + separator
                # Map subckt port names to the nets this instance connects to
                # (which themselves may need mapping at our level).
                outer = {
                    port: self._resolve_net(net, prefix, port_map)
                    for port, net in zip(definition.ports, dev.nodes)
                }
                definition.body._flatten_into(
                    flat, inner_prefix, separator, depth + 1, outer)
            else:
                mapping = {
                    n: self._resolve_net(n, prefix, port_map) for n in dev.nodes
                }
                flat.add(dev.renamed(mapping).with_prefix(prefix))

    def _resolve_net(self, net: str, prefix: str,
                     port_map: dict[str, str]) -> str:
        if net == GROUND:
            return GROUND
        if net in port_map:
            return port_map[net]
        return prefix + net

    def _lookup_subckt(self, name: str) -> SubcktDef | None:
        return self.subckts.get(name)

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def map_devices(self, fn: Callable[[Device], Device]) -> "Circuit":
        """Return a new circuit with ``fn`` applied to each device."""
        out = Circuit(self.name, [], dict(self.subckts))
        for d in self.devices:
            out.add(fn(d))
        return out

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, {len(self.devices)} devices, "
                f"{len(self.nets())} nets)")
