"""Device primitives and model cards for the circuit representation.

Devices are deliberately *pure data*: they carry connectivity and parameters
but no simulation behaviour.  The MNA stamping rules live in
:mod:`repro.analysis.mna`, the symbolic stamps in :mod:`repro.symbolic`, and
the layout generators in :mod:`repro.layout.devicegen`.  This keeps one
netlist usable by every tool in the flow, the way the 1996-era tools shared
SPICE decks.

The MOS transistor uses the SPICE level-1 (square-law) model with channel-
length modulation and body effect.  Level 1 is exactly what the surveyed
synthesis tools (IDAC, OPASYN, OPTIMAN, ASTRX/OBLX) used for hand-derived
design equations, so it preserves all the qualitative design trade-offs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

BOLTZMANN = 1.380649e-23
Q_ELECTRON = 1.602176634e-19
ROOM_TEMP_K = 300.15
THERMAL_VOLTAGE = BOLTZMANN * ROOM_TEMP_K / Q_ELECTRON  # ~25.9 mV


class MosPolarity(enum.Enum):
    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class MosModel:
    """SPICE level-1 MOS model card.

    Parameters follow SPICE naming: ``kp`` is the transconductance factor
    (µCox, A/V²), ``vto`` the zero-bias threshold, ``lambda_`` channel-length
    modulation (1/V), ``gamma`` body-effect coefficient (V^0.5), ``phi``
    surface potential (V).  Capacitance parameters: ``cox`` gate-oxide
    capacitance per area (F/m²), ``cj``/``cjsw`` junction area/sidewall
    capacitances, ``cgdo``/``cgso`` overlap capacitances per width (F/m).
    Noise: ``kf``/``af`` flicker-noise parameters.
    """

    name: str
    polarity: MosPolarity
    kp: float = 50e-6
    vto: float = 0.7
    lambda_: float = 0.04
    gamma: float = 0.45
    phi: float = 0.7
    cox: float = 2.3e-3
    cj: float = 0.4e-3
    cjsw: float = 0.4e-9
    cgdo: float = 0.3e-9
    cgso: float = 0.3e-9
    kf: float = 1e-26
    af: float = 1.0

    @property
    def is_nmos(self) -> bool:
        return self.polarity is MosPolarity.NMOS

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (applied to all terminal voltages)."""
        return 1.0 if self.is_nmos else -1.0


# A representative synthetic 0.8 µm CMOS process, scaled from mid-90s data.
NMOS_DEFAULT = MosModel("nmos_08", MosPolarity.NMOS, kp=100e-6, vto=0.75,
                        lambda_=0.05, gamma=0.5, phi=0.7)
PMOS_DEFAULT = MosModel("pmos_08", MosPolarity.PMOS, kp=35e-6, vto=0.75,
                        lambda_=0.07, gamma=0.45, phi=0.7, kf=4e-27)


@dataclass(frozen=True)
class DiodeModel:
    name: str
    i_sat: float = 1e-14
    emission: float = 1.0
    cj0: float = 0.0


class Device:
    """Base class for all circuit elements.

    Subclasses define ``nodes`` (ordered terminal net names).  Devices are
    value objects: renaming nets or scaling parameters returns new devices.
    """

    name: str
    nodes: tuple[str, ...]

    def renamed(self, mapping: dict[str, str]) -> "Device":
        """Return a copy with nets renamed through ``mapping``."""
        new_nodes = tuple(mapping.get(n, n) for n in self.nodes)
        return replace(self, nodes=new_nodes)  # type: ignore[type-var]

    def with_prefix(self, prefix: str) -> "Device":
        return replace(self, name=prefix + self.name)  # type: ignore[type-var]


@dataclass(frozen=True)
class Resistor(Device):
    name: str
    nodes: tuple[str, str]
    value: float
    # Layout hints used by the device generators.
    sheet_res: float | None = None

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"resistor {self.name} must be positive, got {self.value}")


@dataclass(frozen=True)
class Capacitor(Device):
    name: str
    nodes: tuple[str, str]
    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"capacitor {self.name} must be non-negative")


@dataclass(frozen=True)
class Inductor(Device):
    name: str
    nodes: tuple[str, str]
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"inductor {self.name} must be positive")


@dataclass(frozen=True)
class Waveform:
    """Time-dependent source description (subset of SPICE transient forms)."""

    kind: str = "dc"  # "dc" | "pulse" | "sin" | "pwl"
    params: tuple[float, ...] = ()
    points: tuple[tuple[float, float], ...] = ()

    def value_at(self, t: float, dc: float) -> float:
        if self.kind == "dc":
            return dc
        if self.kind == "sin":
            off, amp, freq = (tuple(self.params) + (0.0, 0.0, 1.0))[:3]
            delay = self.params[3] if len(self.params) > 3 else 0.0
            if t < delay:
                return off
            return off + amp * math.sin(2 * math.pi * freq * (t - delay))
        if self.kind == "pulse":
            v1, v2, delay, rise, fall, width, period = (
                tuple(self.params) + (0.0,) * 7)[:7]
            if period <= 0:
                period = float("inf")
            if t < delay:
                return v1
            tm = (t - delay) % period if period != float("inf") else (t - delay)
            if rise > 0 and tm < rise:
                return v1 + (v2 - v1) * tm / rise
            tm2 = tm - rise
            if tm2 < width:
                return v2
            tm3 = tm2 - width
            if fall > 0 and tm3 < fall:
                return v2 + (v1 - v2) * tm3 / fall
            return v1
        if self.kind == "pwl":
            pts = self.points
            if not pts:
                return dc
            if t <= pts[0][0]:
                return pts[0][1]
            for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
                if t <= t1:
                    if t1 == t0:
                        return v1
                    return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
            return pts[-1][1]
        raise ValueError(f"unknown waveform kind {self.kind!r}")


@dataclass(frozen=True)
class VoltageSource(Device):
    name: str
    nodes: tuple[str, str]  # (plus, minus)
    dc: float = 0.0
    ac: float = 0.0
    waveform: Waveform = field(default_factory=Waveform)


@dataclass(frozen=True)
class CurrentSource(Device):
    name: str
    nodes: tuple[str, str]  # current flows plus -> minus through the source
    dc: float = 0.0
    ac: float = 0.0
    waveform: Waveform = field(default_factory=Waveform)


@dataclass(frozen=True)
class Vcvs(Device):
    """E element: voltage-controlled voltage source."""

    name: str
    nodes: tuple[str, str, str, str]  # out+, out-, ctrl+, ctrl-
    gain: float = 1.0


@dataclass(frozen=True)
class Vccs(Device):
    """G element: voltage-controlled current source (transconductor)."""

    name: str
    nodes: tuple[str, str, str, str]  # out+, out-, ctrl+, ctrl-
    gm: float = 1.0


@dataclass(frozen=True)
class Cccs(Device):
    """F element: current-controlled current source; control is a V source."""

    name: str
    nodes: tuple[str, str]
    control: str = ""
    gain: float = 1.0


@dataclass(frozen=True)
class Ccvs(Device):
    """H element: current-controlled voltage source; control is a V source."""

    name: str
    nodes: tuple[str, str]
    control: str = ""
    transres: float = 1.0


@dataclass(frozen=True)
class Diode(Device):
    name: str
    nodes: tuple[str, str]  # anode, cathode
    model: DiodeModel = field(default_factory=lambda: DiodeModel("d_default"))
    area: float = 1.0


@dataclass(frozen=True)
class Mosfet(Device):
    """Four-terminal MOS transistor (drain, gate, source, bulk)."""

    name: str
    nodes: tuple[str, str, str, str]
    model: MosModel = field(default_factory=lambda: NMOS_DEFAULT)
    w: float = 10e-6
    l: float = 1e-6
    m: int = 1  # parallel multiplier (layout folding hint)

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise ValueError(f"mosfet {self.name}: W and L must be positive")
        if self.m < 1:
            raise ValueError(f"mosfet {self.name}: multiplier must be >= 1")

    @property
    def drain(self) -> str:
        return self.nodes[0]

    @property
    def gate(self) -> str:
        return self.nodes[1]

    @property
    def source(self) -> str:
        return self.nodes[2]

    @property
    def bulk(self) -> str:
        return self.nodes[3]

    @property
    def beta(self) -> float:
        """kp·(W/L)·m — the square-law current factor."""
        return self.model.kp * (self.w / self.l) * self.m

    def gate_cap(self) -> float:
        """Total gate capacitance estimate (Cox·W·L + overlaps)."""
        area = self.w * self.l * self.m
        overlap = (self.model.cgdo + self.model.cgso) * self.w * self.m
        return self.model.cox * area + overlap


@dataclass(frozen=True)
class SubcktInstance(Device):
    """X element: instance of a subcircuit definition."""

    name: str
    nodes: tuple[str, ...]
    subckt: str = ""
    params: tuple[tuple[str, float], ...] = ()
