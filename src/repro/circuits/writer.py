"""SPICE-dialect netlist writer — the inverse of :mod:`repro.circuits.parser`.

Round-tripping (write → parse) is covered by property tests; the writer is
also what the layout flow uses to hand extracted circuits back to the
simulator for post-layout verification.
"""

from __future__ import annotations

from repro.circuits.devices import (
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Device,
    Diode,
    DiodeModel,
    Inductor,
    MosModel,
    Mosfet,
    Resistor,
    SubcktInstance,
    Vccs,
    Vcvs,
    VoltageSource,
    Waveform,
)
from repro.circuits.netlist import Circuit


def write_netlist(circuit: Circuit, title: str | None = None) -> str:
    """Serialize a circuit (with its models and subckts) to SPICE text."""
    lines = [f"* {title or circuit.name}"]
    for model in _collect_models(circuit):
        lines.append(_model_card(model))
    for definition in circuit.subckts.values():
        lines.append(f".subckt {definition.name} {' '.join(definition.ports)}")
        for dev in definition.body.devices:
            lines.append("  " + _element_card(dev))
        lines.append(".ends")
    for dev in circuit.devices:
        lines.append(_element_card(dev))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _collect_models(circuit: Circuit) -> list[object]:
    models: dict[str, object] = {}

    def visit(c: Circuit) -> None:
        for dev in c.devices:
            if isinstance(dev, Mosfet):
                models.setdefault(dev.model.name, dev.model)
            elif isinstance(dev, Diode):
                models.setdefault(dev.model.name, dev.model)
        for sub in c.subckts.values():
            visit(sub.body)

    visit(circuit)
    return list(models.values())


def _model_card(model: object) -> str:
    if isinstance(model, MosModel):
        return (f".model {model.name} {model.polarity.value} "
                f"kp={model.kp:g} vto={model.vto:g} lambda={model.lambda_:g} "
                f"gamma={model.gamma:g} phi={model.phi:g} cox={model.cox:g} "
                f"cgdo={model.cgdo:g} cgso={model.cgso:g} "
                f"cj={model.cj:g} cjsw={model.cjsw:g} "
                f"kf={model.kf:g} af={model.af:g}")
    if isinstance(model, DiodeModel):
        return (f".model {model.name} d is={model.i_sat:g} "
                f"n={model.emission:g} cjo={model.cj0:g}")
    raise TypeError(f"unknown model type {type(model).__name__}")


def _waveform_text(wf: Waveform) -> str:
    if wf.kind == "dc":
        return ""
    if wf.kind == "pwl":
        flat = " ".join(f"{t:g} {v:g}" for t, v in wf.points)
        return f" pwl({flat})"
    args = " ".join(f"{p:g}" for p in wf.params)
    return f" {wf.kind}({args})"


def _element_card(dev: Device) -> str:
    if isinstance(dev, Resistor):
        return f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} {dev.value:g}"
    if isinstance(dev, Capacitor):
        return f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} {dev.value:g}"
    if isinstance(dev, Inductor):
        return f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} {dev.value:g}"
    if isinstance(dev, VoltageSource):
        return (f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} dc {dev.dc:g} "
                f"ac {dev.ac:g}" + _waveform_text(dev.waveform))
    if isinstance(dev, CurrentSource):
        return (f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} dc {dev.dc:g} "
                f"ac {dev.ac:g}" + _waveform_text(dev.waveform))
    if isinstance(dev, Vcvs):
        return f"{dev.name} {' '.join(dev.nodes)} {dev.gain:g}"
    if isinstance(dev, Vccs):
        return f"{dev.name} {' '.join(dev.nodes)} {dev.gm:g}"
    if isinstance(dev, Cccs):
        return f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} {dev.control} {dev.gain:g}"
    if isinstance(dev, Ccvs):
        return (f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} {dev.control} "
                f"{dev.transres:g}")
    if isinstance(dev, Diode):
        return (f"{dev.name} {dev.nodes[0]} {dev.nodes[1]} {dev.model.name} "
                f"area={dev.area:g}")
    if isinstance(dev, Mosfet):
        return (f"{dev.name} {' '.join(dev.nodes)} {dev.model.name} "
                f"w={dev.w:g} l={dev.l:g} m={dev.m}")
    if isinstance(dev, SubcktInstance):
        return f"{dev.name} {' '.join(dev.nodes)} {dev.subckt}"
    raise TypeError(f"cannot serialize device type {type(dev).__name__}")
