"""SPICE-dialect netlist parser.

Parses the subset of SPICE used by the tools the tutorial surveys: element
cards (R, C, L, V, I, E, G, F, H, M, D, X), ``.model`` cards for MOS and
diode, hierarchical ``.subckt``/``.ends`` blocks, ``.param`` definitions
with arithmetic expressions, continuation lines and comments.

This lets all example circuits and regression decks live as plain text, the
way 1990s analog CAD systems exchanged designs.
"""

from __future__ import annotations

import math
import re

from repro.circuits.devices import (
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    MosModel,
    Mosfet,
    MosPolarity,
    Resistor,
    SubcktInstance,
    Vccs,
    Vcvs,
    VoltageSource,
    Waveform,
)
from repro.circuits.netlist import Circuit, NetlistError, SubcktDef
from repro.core.units import parse_value


class ParseError(NetlistError):
    """Raised with line information when a netlist card is malformed."""

    def __init__(self, message: str, line_no: int | None = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


_EXPR_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|\d+\.?\d*(?:[eE][-+]?\d+)?"
                         r"[A-Za-z]*|\*\*|[-+*/()])")

_EXPR_FUNCS = {
    "sqrt": math.sqrt,
    "log": math.log,
    "log10": math.log10,
    "exp": math.exp,
    "abs": abs,
    "min": min,
    "max": max,
}


class _ExprParser:
    """Tiny recursive-descent evaluator for .param arithmetic expressions."""

    def __init__(self, text: str, params: dict[str, float]):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.params = params

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens = []
        pos = 0
        while pos < len(text):
            m = _EXPR_TOKEN.match(text, pos)
            if not m:
                if text[pos:].strip():
                    raise ParseError(f"bad expression near {text[pos:]!r}")
                break
            tokens.append(m.group(1))
            pos = m.end()
        return tokens

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return tok

    def parse(self) -> float:
        value = self.expr()
        if self.peek() is not None:
            raise ParseError(f"trailing tokens in expression: {self.peek()!r}")
        return value

    def expr(self) -> float:
        value = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            rhs = self.term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def term(self) -> float:
        value = self.power()
        while self.peek() in ("*", "/"):
            op = self.take()
            rhs = self.power()
            value = value * rhs if op == "*" else value / rhs
        return value

    def power(self) -> float:
        value = self.unary()
        if self.peek() == "**":
            self.take()
            value = value ** self.power()
        return value

    def unary(self) -> float:
        if self.peek() == "-":
            self.take()
            return -self.unary()
        if self.peek() == "+":
            self.take()
            return self.unary()
        return self.atom()

    def atom(self) -> float:
        tok = self.take()
        if tok == "(":
            value = self.expr()
            if self.take() != ")":
                raise ParseError("missing ')' in expression")
            return value
        if tok in _EXPR_FUNCS:
            if self.take() != "(":
                raise ParseError(f"expected '(' after {tok}")
            args = [self.expr()]
            while self.peek() == ",":  # pragma: no cover - commas not tokenized
                self.take()
                args.append(self.expr())
            if self.take() != ")":
                raise ParseError(f"missing ')' after {tok}(...)")
            return _EXPR_FUNCS[tok](*args)
        if tok[0].isalpha() or tok[0] == "_":
            if tok.lower() in self.params:
                return self.params[tok.lower()]
            raise ParseError(f"unknown parameter {tok!r}")
        return parse_value(tok)


def evaluate_expression(text: str, params: dict[str, float] | None = None) -> float:
    """Evaluate a .param arithmetic expression with SI suffixes."""
    return _ExprParser(text, params or {}).parse()


class NetlistParser:
    """Stateful parser producing a :class:`Circuit` from SPICE text."""

    def __init__(self) -> None:
        self.params: dict[str, float] = {}
        self.mos_models: dict[str, MosModel] = {}
        self.diode_models: dict[str, DiodeModel] = {}

    # ------------------------------------------------------------------
    def parse(self, text: str, name: str = "main") -> Circuit:
        lines = self._logical_lines(text)
        circuit = Circuit(name)
        stack: list[tuple[Circuit, SubcktDef | None]] = [(circuit, None)]
        for line_no, line in lines:
            try:
                self._dispatch(line, stack)
            except ParseError:
                # SPICE decks may start with a free-text title; only the very
                # first raw line gets this forgiveness.
                if line_no == 1 and not line.lstrip().startswith("."):
                    continue
                raise
            except (ValueError, KeyError) as exc:
                raise ParseError(str(exc), line_no) from exc
        if len(stack) != 1:
            raise ParseError("unterminated .subckt block")
        return circuit

    # ------------------------------------------------------------------
    @staticmethod
    def _logical_lines(text: str) -> list[tuple[int, str]]:
        """Strip comments, join '+' continuations, keep line numbers."""
        raw = text.splitlines()
        out: list[tuple[int, str]] = []
        for i, line in enumerate(raw, start=1):
            line = line.split(";")[0].rstrip()
            if i == 1 and line and not line.lstrip().startswith(
                    (".", "*")) and _looks_like_title(line):
                continue
            if not line.strip():
                continue
            if line.lstrip().startswith("*"):
                continue
            if line.lstrip().startswith("+"):
                if not out:
                    raise ParseError("continuation line with nothing to continue", i)
                prev_no, prev = out[-1]
                out[-1] = (prev_no, prev + " " + line.lstrip()[1:])
            else:
                out.append((i, line.strip()))
        return out

    # ------------------------------------------------------------------
    def _dispatch(self, line: str, stack) -> None:
        lower = line.lower()
        current, _ = stack[-1]
        if lower.startswith(".param"):
            self._parse_param(line)
        elif lower.startswith(".model"):
            self._parse_model(line)
        elif lower.startswith(".subckt"):
            tokens = line.split()
            if len(tokens) < 3:
                raise ParseError(".subckt needs a name and at least one port")
            body = Circuit(tokens[1])
            definition = SubcktDef(tokens[1].lower(), tuple(tokens[2:]), body)
            stack.append((body, definition))
        elif lower.startswith(".ends"):
            if len(stack) == 1:
                raise ParseError(".ends without matching .subckt")
            _, definition = stack.pop()
            assert definition is not None
            parent, _ = stack[-1]
            parent.define_subckt(definition)
        elif lower.startswith((".end", ".op", ".ac", ".tran", ".dc", ".noise",
                               ".include", ".options", ".print", ".plot")):
            return  # analysis/control cards are handled by callers, not here
        elif lower.startswith("."):
            raise ParseError(f"unsupported control card {line.split()[0]!r}")
        else:
            current.add(self._parse_element(line))

    # ------------------------------------------------------------------
    def _parse_param(self, line: str) -> None:
        body = line[len(".param"):]
        for match in re.finditer(r"(\w+)\s*=\s*([^\s=]+(?:\([^)]*\))?)", body):
            name, expr = match.group(1).lower(), match.group(2)
            self.params[name] = self._value(expr)

    def _parse_model(self, line: str) -> None:
        tokens = self._split_with_params(line)
        if len(tokens) < 3:
            raise ParseError(".model needs a name and a type")
        name = tokens[1].lower()
        mtype = tokens[2].lower()
        kv = self._keyword_values(tokens[3:])
        if mtype in ("nmos", "pmos"):
            polarity = MosPolarity.NMOS if mtype == "nmos" else MosPolarity.PMOS
            base = MosModel(name, polarity)
            fields = {
                "kp": kv.get("kp", base.kp),
                "vto": kv.get("vto", base.vto),
                "lambda_": kv.get("lambda", base.lambda_),
                "gamma": kv.get("gamma", base.gamma),
                "phi": kv.get("phi", base.phi),
                "cox": kv.get("cox", base.cox),
                "cgdo": kv.get("cgdo", base.cgdo),
                "cgso": kv.get("cgso", base.cgso),
                "cj": kv.get("cj", base.cj),
                "cjsw": kv.get("cjsw", base.cjsw),
                "kf": kv.get("kf", base.kf),
                "af": kv.get("af", base.af),
            }
            self.mos_models[name] = MosModel(name, polarity, **fields)
        elif mtype == "d":
            self.diode_models[name] = DiodeModel(
                name,
                i_sat=kv.get("is", 1e-14),
                emission=kv.get("n", 1.0),
                cj0=kv.get("cjo", kv.get("cj0", 0.0)),
            )
        else:
            raise ParseError(f"unsupported model type {mtype!r}")

    # ------------------------------------------------------------------
    def _parse_element(self, line: str) -> object:
        tokens = self._split_with_params(line)
        name = tokens[0]
        kind = name[0].lower()
        if kind == "r":
            self._need(tokens, 4, "R name n1 n2 value")
            return Resistor(name, (tokens[1], tokens[2]), self._value(tokens[3]))
        if kind == "c":
            self._need(tokens, 4, "C name n1 n2 value")
            return Capacitor(name, (tokens[1], tokens[2]), self._value(tokens[3]))
        if kind == "l":
            self._need(tokens, 4, "L name n1 n2 value")
            return Inductor(name, (tokens[1], tokens[2]), self._value(tokens[3]))
        if kind in ("v", "i"):
            return self._parse_source(kind, name, tokens)
        if kind == "e":
            self._need(tokens, 6, "E name out+ out- ctrl+ ctrl- gain")
            return Vcvs(name, tuple(tokens[1:5]), self._value(tokens[5]))
        if kind == "g":
            self._need(tokens, 6, "G name out+ out- ctrl+ ctrl- gm")
            return Vccs(name, tuple(tokens[1:5]), self._value(tokens[5]))
        if kind == "f":
            self._need(tokens, 5, "F name n+ n- vcontrol gain")
            return Cccs(name, (tokens[1], tokens[2]), tokens[3],
                        self._value(tokens[4]))
        if kind == "h":
            self._need(tokens, 5, "H name n+ n- vcontrol transres")
            return Ccvs(name, (tokens[1], tokens[2]), tokens[3],
                        self._value(tokens[4]))
        if kind == "d":
            self._need(tokens, 4, "D name anode cathode model")
            model = self.diode_models.get(tokens[3].lower())
            if model is None:
                raise ParseError(f"unknown diode model {tokens[3]!r}")
            kv = self._keyword_values(tokens[4:])
            return Diode(name, (tokens[1], tokens[2]), model,
                         area=kv.get("area", 1.0))
        if kind == "m":
            self._need(tokens, 6, "M name d g s b model [W= L= M=]")
            model = self.mos_models.get(tokens[5].lower())
            if model is None:
                raise ParseError(f"unknown MOS model {tokens[5]!r}")
            kv = self._keyword_values(tokens[6:])
            return Mosfet(name, tuple(tokens[1:5]), model,
                          w=kv.get("w", 10e-6), l=kv.get("l", 1e-6),
                          m=int(kv.get("m", 1)))
        if kind == "x":
            self._need(tokens, 3, "X name nodes... subckt")
            return SubcktInstance(name, tuple(tokens[1:-1]), tokens[-1].lower())
        raise ParseError(f"unknown element type {name!r}")

    def _parse_source(self, kind: str, name: str, tokens: list[str]):
        self._need(tokens, 3, f"{kind.upper()} name n+ n- [DC v] [AC v] [PULSE/SIN/PWL ...]")
        nodes = (tokens[1], tokens[2])
        rest = tokens[3:]
        dc = ac = 0.0
        waveform = Waveform()
        i = 0
        while i < len(rest):
            tok = rest[i].lower()
            if tok == "dc":
                dc = self._value(rest[i + 1])
                i += 2
            elif tok == "ac":
                ac = self._value(rest[i + 1])
                i += 2
            elif tok.startswith(("pulse", "sin", "pwl")):
                wf_kind = "pulse" if tok.startswith("pulse") else (
                    "sin" if tok.startswith("sin") else "pwl")
                args = self._collect_wave_args(rest, i)
                if wf_kind == "pwl":
                    vals = [self._value(a) for a in args]
                    points = tuple(
                        (vals[j], vals[j + 1]) for j in range(0, len(vals) - 1, 2))
                    waveform = Waveform("pwl", points=points)
                else:
                    waveform = Waveform(
                        wf_kind, tuple(self._value(a) for a in args))
                break
            else:
                dc = self._value(rest[i])
                i += 1
        if kind == "v":
            return VoltageSource(name, nodes, dc, ac, waveform)
        return CurrentSource(name, nodes, dc, ac, waveform)

    @staticmethod
    def _collect_wave_args(rest: list[str], start: int) -> list[str]:
        """Gather 'PULSE(a b c)' or 'PULSE a b c' argument forms."""
        joined = " ".join(rest[start:])
        if "(" in joined:
            inner = joined[joined.index("(") + 1:]
            inner = inner.rsplit(")", 1)[0]
            return inner.replace(",", " ").split()
        return rest[start + 1:]

    # ------------------------------------------------------------------
    def _value(self, token: str) -> float:
        token = token.strip()
        if token.startswith("{") and token.endswith("}"):
            return evaluate_expression(token[1:-1], self.params)
        if token.startswith("'") and token.endswith("'"):
            return evaluate_expression(token[1:-1], self.params)
        lower = token.lower()
        if lower in self.params:
            return self.params[lower]
        try:
            return parse_value(token)
        except ValueError:
            return evaluate_expression(token, self.params)

    def _keyword_values(self, tokens: list[str]) -> dict[str, float]:
        kv: dict[str, float] = {}
        for tok in tokens:
            if "=" not in tok:
                raise ParseError(f"expected key=value, got {tok!r}")
            key, raw = tok.split("=", 1)
            kv[key.lower()] = self._value(raw)
        return kv

    @staticmethod
    def _split_with_params(line: str) -> list[str]:
        """Split on whitespace but keep 'key = value' and '{expr}' together."""
        line = re.sub(r"\s*=\s*", "=", line)
        tokens: list[str] = []
        depth = 0
        current = ""
        for ch in line:
            if ch in "{(":
                depth += 1
            elif ch in "})":
                depth -= 1
            if ch.isspace() and depth == 0:
                if current:
                    tokens.append(current)
                    current = ""
            else:
                current += ch
        if current:
            tokens.append(current)
        return tokens

    @staticmethod
    def _need(tokens: list[str], count: int, usage: str) -> None:
        if len(tokens) < count:
            raise ParseError(f"too few fields, expected: {usage}")


def _looks_like_title(line: str) -> bool:
    """First line of a SPICE deck is a title unless it parses as an element."""
    first = line.split()[0]
    if first[0].lower() in "rclvigefhmdx" and len(line.split()) >= 3:
        return False
    return True


def parse_netlist(text: str, name: str = "main") -> Circuit:
    """Parse SPICE text into a :class:`Circuit` (convenience wrapper)."""
    return NetlistParser().parse(text, name)
