"""Canned circuit topologies used across the frontend and backend tools.

These are the workloads of the DAC'96 tutorial: operational amplifiers for
sizing experiments (Fig. 1, Fig. 2), the charge-sensitive amplifier plus
pulse shaper of the AMGIE experiment (Table 1), and simple RC/RLC networks
for AWE and simulator regression.

Each builder takes a ``sizes`` mapping so the synthesis tools can resize the
same topology; defaults are hand-reasonable starting points for the
synthetic 0.8 µm process in :mod:`repro.circuits.devices`.
"""

from __future__ import annotations

from repro.circuits.devices import (
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    MosModel,
    Waveform,
)
from repro.circuits.netlist import Circuit

VDD = "vdd"
VSS = "0"


def _merged(defaults: dict[str, float], sizes: dict[str, float] | None) -> dict[str, float]:
    merged = dict(defaults)
    if sizes:
        unknown = set(sizes) - set(defaults)
        if unknown:
            raise KeyError(f"unknown size parameters: {sorted(unknown)}")
        merged.update(sizes)
    return merged


# ----------------------------------------------------------------------
# Operational amplifiers
# ----------------------------------------------------------------------

OTA_DEFAULTS = {
    "w_in": 40e-6, "l_in": 2e-6,       # input differential pair (M1, M2)
    "w_load": 20e-6, "l_load": 2e-6,   # current-mirror load (M3, M4)
    "w_tail": 30e-6, "l_tail": 2e-6,   # tail current source (M5)
    "i_bias": 20e-6,
    "c_load": 2e-12,
    "vdd": 3.3,
}


def five_transistor_ota(sizes: dict[str, float] | None = None,
                        nmos: MosModel = NMOS_DEFAULT,
                        pmos: MosModel = PMOS_DEFAULT) -> Circuit:
    """Classic 5-transistor OTA with NMOS input pair and PMOS mirror load.

    Ports: ``inp``, ``inn`` (inputs), ``out``, ``vdd``.  The tail current is
    set by an ideal reference into a mirror for simplicity.
    """
    p = _merged(OTA_DEFAULTS, sizes)
    c = Circuit("five_transistor_ota")
    c.vsource("vdd_src", VDD, VSS, dc=p["vdd"])
    # Input pair.
    c.mosfet("m1", "x1", "inp", "tail", VSS, nmos, p["w_in"], p["l_in"])
    c.mosfet("m2", "out", "inn", "tail", VSS, nmos, p["w_in"], p["l_in"])
    # PMOS mirror load.
    c.mosfet("m3", "x1", "x1", VDD, VDD, pmos, p["w_load"], p["l_load"])
    c.mosfet("m4", "out", "x1", VDD, VDD, pmos, p["w_load"], p["l_load"])
    # Tail mirror: M6 diode-connected reference, M5 tail.
    c.mosfet("m5", "tail", "nbias", VSS, VSS, nmos, p["w_tail"], p["l_tail"])
    c.mosfet("m6", "nbias", "nbias", VSS, VSS, nmos, p["w_tail"], p["l_tail"])
    c.isource("ibias", VDD, "nbias", dc=p["i_bias"])
    c.capacitor("cl", "out", VSS, p["c_load"])
    return c


TWO_STAGE_DEFAULTS = {
    "w_in": 60e-6, "l_in": 2e-6,
    "w_load": 30e-6, "l_load": 2e-6,
    "w_tail": 40e-6, "l_tail": 2e-6,
    # Second stage: the PMOS driver mirrors the first-stage load gate
    # voltage, so its quiescent current is i_bias/2·(w_p2/l_p2)/(w_load/
    # l_load); w_n2 is chosen to sink exactly that via the nbias mirror,
    # which keeps both output devices saturated.
    "w_p2": 120e-6, "l_p2": 1.5e-6,    # second-stage driver (PMOS)
    "w_n2": 106.7e-6, "l_n2": 2e-6,    # second-stage current sink
    "c_comp": 3e-12,
    "r_zero": 3e3,
    "i_bias": 25e-6,
    "c_load": 5e-12,
    "vdd": 3.3,
}


def two_stage_miller(sizes: dict[str, float] | None = None,
                     nmos: MosModel = NMOS_DEFAULT,
                     pmos: MosModel = PMOS_DEFAULT) -> Circuit:
    """Two-stage Miller-compensated CMOS opamp (the Fig. 2 workhorse).

    NMOS input pair + PMOS mirror, PMOS common-source second stage with
    Miller capacitor and nulling resistor.  Ports: ``inp``, ``inn``,
    ``out``, ``vdd``.
    """
    p = _merged(TWO_STAGE_DEFAULTS, sizes)
    c = Circuit("two_stage_miller")
    c.vsource("vdd_src", VDD, VSS, dc=p["vdd"])
    c.mosfet("m1", "x1", "inp", "tail", VSS, nmos, p["w_in"], p["l_in"])
    c.mosfet("m2", "x2", "inn", "tail", VSS, nmos, p["w_in"], p["l_in"])
    c.mosfet("m3", "x1", "x1", VDD, VDD, pmos, p["w_load"], p["l_load"])
    c.mosfet("m4", "x2", "x1", VDD, VDD, pmos, p["w_load"], p["l_load"])
    c.mosfet("m5", "tail", "nbias", VSS, VSS, nmos, p["w_tail"], p["l_tail"])
    c.mosfet("m6", "out", "x2", VDD, VDD, pmos, p["w_p2"], p["l_p2"])
    c.mosfet("m7", "out", "nbias", VSS, VSS, nmos, p["w_n2"], p["l_n2"])
    c.mosfet("m8", "nbias", "nbias", VSS, VSS, nmos, p["w_tail"], p["l_tail"])
    c.isource("ibias", VDD, "nbias", dc=p["i_bias"])
    c.resistor("rz", "x2", "cz", p["r_zero"])
    c.capacitor("cc", "cz", "out", p["c_comp"])
    c.capacitor("cl", "out", VSS, p["c_load"])
    return c


FOLDED_CASCODE_DEFAULTS = {
    "w_in": 80e-6, "l_in": 1.5e-6,
    "w_tail": 60e-6, "l_tail": 2e-6,
    "w_psrc": 100e-6, "l_psrc": 2e-6,   # top PMOS current sources
    "w_pcas": 80e-6, "l_pcas": 1.5e-6,  # PMOS cascodes
    "w_ncas": 40e-6, "l_ncas": 1.5e-6,  # NMOS cascodes
    "w_nsrc": 40e-6, "l_nsrc": 2e-6,    # bottom NMOS mirror
    "i_bias": 40e-6,
    "c_load": 3e-12,
    "vdd": 3.3,
}


def folded_cascode_ota(sizes: dict[str, float] | None = None,
                       nmos: MosModel = NMOS_DEFAULT,
                       pmos: MosModel = PMOS_DEFAULT) -> Circuit:
    """Folded-cascode OTA with NMOS input pair (high-gain single stage).

    Bias voltages are generated with simple diode ladders so the circuit is
    self-contained for DC analysis.  Ports: ``inp``, ``inn``, ``out``.
    """
    p = _merged(FOLDED_CASCODE_DEFAULTS, sizes)
    c = Circuit("folded_cascode_ota")
    c.vsource("vdd_src", VDD, VSS, dc=p["vdd"])
    # Bias ladder: three stacked diode devices give cascode gate biases.
    c.isource("ib1", VDD, "nbias", dc=p["i_bias"])
    c.mosfet("mb1", "nbias", "nbias", VSS, VSS, nmos, p["w_nsrc"], p["l_nsrc"])
    c.isource("ib2", "pbias", VSS, dc=p["i_bias"])
    c.mosfet("mb2", "pbias", "pbias", VDD, VDD, pmos, p["w_psrc"], p["l_psrc"])
    c.vsource("vcn", "vbn_cas", VSS, dc=1.4)
    c.vsource("vcp", "vbp_cas", VSS, dc=p["vdd"] - 1.4)
    # Input pair, folded into PMOS sources.
    c.mosfet("m1", "f1", "inp", "tail", VSS, nmos, p["w_in"], p["l_in"])
    c.mosfet("m2", "f2", "inn", "tail", VSS, nmos, p["w_in"], p["l_in"])
    c.mosfet("m5", "tail", "nbias", VSS, VSS, nmos, p["w_tail"], p["l_tail"])
    # Top PMOS current sources feeding the folding nodes.
    c.mosfet("m6", "f1", "pbias", VDD, VDD, pmos, p["w_psrc"], p["l_psrc"])
    c.mosfet("m7", "f2", "pbias", VDD, VDD, pmos, p["w_psrc"], p["l_psrc"])
    # PMOS cascodes from folding nodes to the outputs.
    c.mosfet("m8", "c1", "vbp_cas", "f1", VDD, pmos, p["w_pcas"], p["l_pcas"])
    c.mosfet("m9", "out", "vbp_cas", "f2", VDD, pmos, p["w_pcas"], p["l_pcas"])
    # NMOS cascode mirror.
    c.mosfet("m10", "c1", "vbn_cas", "s1", VSS, nmos, p["w_ncas"], p["l_ncas"])
    c.mosfet("m11", "out", "vbn_cas", "s2", VSS, nmos, p["w_ncas"], p["l_ncas"])
    c.mosfet("m12", "s1", "c1", VSS, VSS, nmos, p["w_nsrc"], p["l_nsrc"])
    c.mosfet("m13", "s2", "c1", VSS, VSS, nmos, p["w_nsrc"], p["l_nsrc"])
    c.capacitor("cl", "out", VSS, p["c_load"])
    return c


def large_cascode_opamp(sizes: dict[str, float] | None = None) -> Circuit:
    """A ~24-device opamp ("741-complexity" stand-in) for symbolic scaling.

    Folded cascode first stage + class-A second stage + output buffer.
    Only used to stress the symbolic analyzer and stack extractor.
    """
    c = folded_cascode_ota(sizes)
    c.name = "large_cascode_opamp"
    nmos, pmos = NMOS_DEFAULT, PMOS_DEFAULT
    # Second stage.
    c.mosfet("m20", "out2", "out", VDD, VDD, pmos, 160e-6, 1.5e-6)
    c.mosfet("m21", "out2", "nbias", VSS, VSS, nmos, 80e-6, 2e-6)
    c.resistor("rz2", "out", "cz2", 2e3)
    c.capacitor("cc2", "cz2", "out2", 2e-12)
    # Source-follower output buffer.
    c.mosfet("m22", VDD, "out2", "outb", VSS, nmos, 200e-6, 1e-6)
    c.mosfet("m23", "outb", "nbias", VSS, VSS, nmos, 100e-6, 2e-6)
    c.capacitor("clb", "outb", VSS, 10e-12)
    return c


# ----------------------------------------------------------------------
# Functional building-block stamps (compose grammar primitives)
# ----------------------------------------------------------------------
#
# The opamps above are *canned* topologies; the stamps below expose the
# same functional blocks (bias references, tail sources, differential
# pairs, mirror/cascode/resistive loads, class-A/AB output stages,
# Miller compensation) as reusable primitives so
# :mod:`repro.synthesis.compose` can enumerate novel compositions.  Each
# stamp adds devices to an existing :class:`Circuit` and returns the net
# name downstream blocks attach to.  ``polarity`` names the *channel
# type of the stamped devices* ("n" or "p"); the complementary rail and
# bulk connections follow from it.

CASCODE_BIAS_MARGIN = 1.4  # ideal cascode gate bias offset from the rail


def _polarity(polarity: str,
              nmos: MosModel = NMOS_DEFAULT,
              pmos: MosModel = PMOS_DEFAULT) -> tuple[MosModel, str]:
    """Return (device model, source rail) for a block polarity."""
    if polarity == "n":
        return nmos, VSS
    if polarity == "p":
        return pmos, VDD
    raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")


def stamp_supply(c: Circuit, vdd: float) -> None:
    """Ideal supply between the VDD and VSS rails."""
    c.vsource("vdd_src", VDD, VSS, dc=vdd)


def stamp_bias_reference(c: Circuit, polarity: str,
                         w: float, l: float, i_bias: float) -> str:
    """Diode-connected mirror reference fed by an ideal current source.

    Returns the bias net whose gate voltage mirrors ``i_bias`` into any
    same-polarity device of matched length.
    """
    model, rail = _polarity(polarity)
    bias = "nbias" if polarity == "n" else "pbias"
    if polarity == "n":
        c.isource("ibias", VDD, bias, dc=i_bias)
    else:
        c.isource("ibias", bias, VSS, dc=i_bias)
    c.mosfet("mb_ref", bias, bias, rail, rail, model, w, l)
    return bias


def stamp_tail_source(c: Circuit, polarity: str, bias: str,
                      w: float, l: float, vdd: float,
                      cascode: bool = False) -> str:
    """Tail current source (optionally cascoded) off a mirror bias net.

    Returns the tail net the differential pair's sources connect to.  The
    cascode gate is an ideal voltage offset from the rail, the same idiom
    as :func:`folded_cascode_ota`'s bias ladder.
    """
    model, rail = _polarity(polarity)
    if not cascode:
        c.mosfet("m_tail", "tail", bias, rail, rail, model, w, l)
        return "tail"
    if polarity == "n":
        c.vsource("v_castail", "vb_tail", VSS, dc=CASCODE_BIAS_MARGIN)
    else:
        c.vsource("v_castail", "vb_tail", VSS, dc=vdd - CASCODE_BIAS_MARGIN)
    c.mosfet("m_tail", "tmid", bias, rail, rail, model, w, l)
    c.mosfet("m_tailc", "tail", "vb_tail", "tmid", rail, model, w, l)
    return "tail"


def stamp_diff_pair(c: Circuit, polarity: str, tail: str,
                    out_neg: str, out_pos: str,
                    w: float, l: float) -> None:
    """Differential pair: ``inp`` drives ``out_neg``, ``inn`` ``out_pos``."""
    model, rail = _polarity(polarity)
    c.mosfet("m_in1", out_neg, "inp", tail, rail, model, w, l)
    c.mosfet("m_in2", out_pos, "inn", tail, rail, model, w, l)


def stamp_mirror_load(c: Circuit, polarity: str, n_diode: str, n_out: str,
                      w: float, l: float) -> None:
    """Current-mirror load: diode side on ``n_diode``, mirror on ``n_out``."""
    model, rail = _polarity(polarity)
    c.mosfet("m_ld1", n_diode, n_diode, rail, rail, model, w, l)
    c.mosfet("m_ld2", n_out, n_diode, rail, rail, model, w, l)


def stamp_cascode_mirror_load(c: Circuit, polarity: str,
                              n_diode: str, n_out: str,
                              w: float, l: float, vdd: float) -> None:
    """Cascoded mirror load for higher output resistance.

    Mirror devices sit at the rail; cascode devices (ideal gate bias)
    stand between them and the branch nodes.  The diode connection wraps
    the cascode so the mirrored current still matches the branch current.
    """
    model, rail = _polarity(polarity)
    if polarity == "n":
        c.vsource("v_casload", "vb_load", VSS, dc=CASCODE_BIAS_MARGIN)
    else:
        c.vsource("v_casload", "vb_load", VSS, dc=vdd - CASCODE_BIAS_MARGIN)
    c.mosfet("m_ld1", "y1", n_diode, rail, rail, model, w, l)
    c.mosfet("m_lc1", n_diode, "vb_load", "y1", rail, model, w, l)
    c.mosfet("m_ld2", "y2", n_diode, rail, rail, model, w, l)
    c.mosfet("m_lc2", n_out, "vb_load", "y2", rail, model, w, l)


def stamp_resistive_load(c: Circuit, polarity: str, n_neg: str, n_pos: str,
                         r: float) -> None:
    """Passive resistive load from both branch nodes to the load rail."""
    _, rail = _polarity(polarity)
    c.resistor("r_ld1", rail, n_neg, r)
    c.resistor("r_ld2", rail, n_pos, r)


def stamp_diode_load(c: Circuit, polarity: str, n_neg: str, n_pos: str,
                     w: float, l: float) -> None:
    """Diode-connected load on both branch nodes: gm-ratio gain, wideband."""
    model, rail = _polarity(polarity)
    c.mosfet("m_ld1", n_neg, n_neg, rail, rail, model, w, l)
    c.mosfet("m_ld2", n_pos, n_pos, rail, rail, model, w, l)


def stamp_resistor_tail(c: Circuit, polarity: str, r: float) -> str:
    """Passive tail: degeneration resistor to the rail sets the current."""
    _, rail = _polarity(polarity)
    c.resistor("r_tail", "tail", rail, r)
    return "tail"


def stamp_class_a_stage(c: Circuit, drive_polarity: str, n_drive: str,
                        bias: str, out: str,
                        w_drv: float, l_drv: float,
                        w_sink: float, l_sink: float) -> None:
    """Class-A common-source second stage with a mirrored current sink.

    ``drive_polarity`` is the channel type of the *driver*; the sink is
    the complementary device biased from the first stage's mirror net.
    """
    drv_model, drv_rail = _polarity(drive_polarity)
    sink_model, sink_rail = _polarity("p" if drive_polarity == "n" else "n")
    c.mosfet("m_drv", out, n_drive, drv_rail, drv_rail, drv_model,
             w_drv, l_drv)
    c.mosfet("m_sink", out, bias, sink_rail, sink_rail, sink_model,
             w_sink, l_sink)


def stamp_class_ab_stage(c: Circuit, n_drive: str, out: str,
                         w_p: float, l_p: float,
                         w_n: float, l_n: float,
                         nmos: MosModel = NMOS_DEFAULT,
                         pmos: MosModel = PMOS_DEFAULT) -> None:
    """Push-pull (class-AB) inverter stage: both gates on ``n_drive``."""
    c.mosfet("m_drvp", out, n_drive, VDD, VDD, pmos, w_p, l_p)
    c.mosfet("m_drvn", out, n_drive, VSS, VSS, nmos, w_n, l_n)


def stamp_miller_comp(c: Circuit, n_inner: str, out: str,
                      c_comp: float, r_zero: float | None = None) -> None:
    """Miller compensation, optionally with a nulling resistor."""
    if r_zero is None:
        c.capacitor("c_comp", n_inner, out, c_comp)
    else:
        c.resistor("r_zero", n_inner, "cz", r_zero)
        c.capacitor("c_comp", "cz", out, c_comp)


# ----------------------------------------------------------------------
# Pulse-detector frontend (Table 1 workload)
# ----------------------------------------------------------------------

CSA_DEFAULTS = {
    "w_in": 200e-6, "l_in": 1.2e-6,    # input device dominates noise
    # The cascode is sized wide and biased high enough that it can never
    # current-limit the input branch below the mirror current — otherwise
    # the feedback loop has a second (latched) DC operating point.
    "w_cas": 300e-6, "l_cas": 1.2e-6,
    "w_src": 80e-6, "l_src": 2e-6,
    "v_cas": 1.8,
    "i_bias": 200e-6,
    "c_fb": 0.5e-12,                   # feedback (integration) capacitor
    "r_fb": 20e6,                      # continuous reset resistor
    "c_det": 5e-12,                    # detector capacitance at the input
    "vdd": 3.3,
}


def charge_sensitive_amplifier(sizes: dict[str, float] | None = None,
                               nmos: MosModel = NMOS_DEFAULT,
                               pmos: MosModel = PMOS_DEFAULT) -> Circuit:
    """Charge-sensitive amplifier: cascoded common-source with C_fb feedback.

    The detector is modelled as a current impulse into ``in`` in parallel
    with ``c_det`` — exactly the testbench AMGIE used for the pulse
    detector of Table 1.
    """
    p = _merged(CSA_DEFAULTS, sizes)
    c = Circuit("charge_sensitive_amplifier")
    c.vsource("vdd_src", VDD, VSS, dc=p["vdd"])
    c.capacitor("cdet", "in", VSS, p["c_det"])
    # Cascoded common-source gain stage.
    c.mosfet("m1", "casc", "in", VSS, VSS, nmos, p["w_in"], p["l_in"])
    c.vsource("vcas", "vb_cas", VSS, dc=p["v_cas"])
    c.mosfet("m2", "out", "vb_cas", "casc", VSS, nmos, p["w_cas"], p["l_cas"])
    c.mosfet("m3", "out", "pb", VDD, VDD, pmos, p["w_src"], p["l_src"])
    c.mosfet("m4", "pb", "pb", VDD, VDD, pmos, p["w_src"], p["l_src"])
    c.isource("ib", "pb", VSS, dc=p["i_bias"])
    # Feedback network.  R_fb also self-biases the input device: at DC no
    # current flows through it, so V(in) = V(out) settles at the unique
    # point where M1 sinks the mirrored bias current (a deliberately
    # unambiguous operating point — adding a separate gate bias creates a
    # second high-state solution Newton can fall into).
    c.capacitor("cfb", "in", "out", p["c_fb"])
    c.resistor("rfb", "in", "out", p["r_fb"])
    return c


def shaper_stage(index: int, tau: float, gain: float,
                 differentiator: bool = False,
                 r_unit: float = 100e3) -> Circuit:
    """One active pulse-shaping stage as an ideal-opamp RC network.

    ``differentiator=True`` builds the CR stage ``-G·sτ/(1+sτ)`` (series
    R-C input, resistive feedback — blocks the CSA's DC level);
    otherwise an RC lowpass stage ``-G/(1+sτ)``.  A chain of one CR plus
    n RC stages realizes the semi-Gaussian CR-RCⁿ shaper.

    Implemented with a VCVS opamp so the shaper chain simulates at
    behavioural level, matching the hierarchical methodology of §2.1
    where subblocks stay behavioural until specification translation
    reaches the device level.
    """
    c = Circuit(f"shaper_stage_{index}")
    rin = r_unit / max(gain, 1e-9)
    inp, out = "in", "out"
    if differentiator:
        # Zin = rin + 1/(s·cin) with rin·cin = tau; Zf = r_unit.
        c.resistor("rin", inp, "mid", rin)
        c.capacitor("cin", "mid", "vx", tau / rin)
        c.resistor("rf", "vx", out, r_unit)
    else:
        # Zin = rin; Zf = r_unit ∥ cf with r_unit·cf = tau.
        c.resistor("rin", inp, "vx", rin)
        c.resistor("rf", "vx", out, r_unit)
        c.capacitor("cf", "vx", out, tau / r_unit)
    from repro.circuits.devices import Vcvs
    c.add(Vcvs("eamp", (out, "0", "0", "vx"), gain=1e5))
    return c


# ----------------------------------------------------------------------
# Passive networks for simulator/AWE regression
# ----------------------------------------------------------------------

def rc_ladder(n_sections: int, r: float = 1e3, c: float = 1e-12) -> Circuit:
    """Uniform RC ladder driven by ``vin`` — the canonical AWE example."""
    if n_sections < 1:
        raise ValueError("need at least one RC section")
    ckt = Circuit(f"rc_ladder_{n_sections}")
    ckt.vsource("vin", "n0", VSS, dc=0.0, ac=1.0)
    for i in range(n_sections):
        ckt.resistor(f"r{i + 1}", f"n{i}", f"n{i + 1}", r)
        ckt.capacitor(f"c{i + 1}", f"n{i + 1}", VSS, c)
    return ckt


def rlc_tank(r: float = 50.0, l: float = 1e-9, c: float = 1e-12) -> Circuit:
    """Series R-L into parallel C: a 2nd-order response with complex poles."""
    ckt = Circuit("rlc_tank")
    ckt.vsource("vin", "a", VSS, dc=0.0, ac=1.0)
    ckt.resistor("rs", "a", "b", r)
    ckt.inductor("ls", "b", "out", l)
    ckt.capacitor("cp", "out", VSS, c)
    return ckt


def voltage_divider(r1: float = 1e3, r2: float = 1e3, vin: float = 1.0) -> Circuit:
    ckt = Circuit("voltage_divider")
    ckt.vsource("vin", "a", VSS, dc=vin, ac=1.0)
    ckt.resistor("r1", "a", "out", r1)
    ckt.resistor("r2", "out", VSS, r2)
    return ckt


def common_source_amp(w: float = 50e-6, l: float = 1e-6,
                      r_load: float = 20e3, vgs: float = 1.1,
                      vdd: float = 3.3,
                      nmos: MosModel = NMOS_DEFAULT) -> Circuit:
    """Resistor-loaded common-source stage — smallest interesting MOS circuit."""
    ckt = Circuit("common_source_amp")
    ckt.vsource("vdd_src", VDD, VSS, dc=vdd)
    ckt.vsource("vin", "g", VSS, dc=vgs, ac=1.0)
    ckt.resistor("rl", VDD, "out", r_load)
    ckt.mosfet("m1", "out", "g", VSS, VSS, nmos, w, l)
    return ckt


def switched_cap_integrator(c_sample: float = 1e-12,
                            c_int: float = 4e-12,
                            r_switch: float = 5e3) -> Circuit:
    """Structural SC integrator (switches as on-resistances, AC view).

    Used by the layout tools as an example of the regular, procedurally
    generated structures of [52].  In this continuous-time approximation
    (both switches closed) the circuit is a charge amplifier with flat
    gain C_sample/C_int; the integration behaviour is a discrete-time
    property of the switch phases, which this structural view does not
    model.
    """
    from repro.circuits.devices import Vcvs
    ckt = Circuit("sc_integrator")
    ckt.vsource("vin", "in", VSS, dc=0.0, ac=1.0)
    ckt.resistor("rsw1", "in", "cs_top", r_switch)
    ckt.capacitor("cs", "cs_top", "vx", c_sample)
    ckt.resistor("rsw2", "vx", VSS, 1e9)  # virtual-ground leak
    ckt.capacitor("ci", "vx", "out", c_int)
    ckt.add(Vcvs("eamp", ("out", "0", "0", "vx"), gain=1e5))
    return ckt
