"""Core vocabulary shared by all repro subsystems: units and specifications."""

from repro.core.specs import Spec, SpecKind, SpecReport, SpecSet
from repro.core.units import UnitError, db20, format_si, from_db20, parse_value

__all__ = [
    "Spec",
    "SpecKind",
    "SpecReport",
    "SpecSet",
    "UnitError",
    "db20",
    "format_si",
    "from_db20",
    "parse_value",
]
