"""Engineering-unit parsing and formatting.

Analog design tools live and die by SI-suffixed numbers ("1.5u", "20k",
"3.3MEG").  This module provides the tiny, well-tested kernel used by the
netlist parser, the spec system and all reporting code.

The suffix grammar follows SPICE conventions: suffixes are case-insensitive,
``MEG`` (or ``X``) means 1e6 while ``m`` means 1e-3, and trailing unit names
("1.5uF", "20kOhm") are ignored after the scale suffix.
"""

from __future__ import annotations

import math

# Ordered so that longer suffixes are tried first ("meg" before "m").
_SUFFIXES = [
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("x", 1e6),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]

_FORMAT_STEPS = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "meg"),  # SPICE convention: 'M' means milli, so 1e6 is 'meg'
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


class UnitError(ValueError):
    """Raised when a numeric literal with unit suffix cannot be parsed."""


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style numeric literal into a float.

    Accepts plain numbers, exponent notation and SI/SPICE suffixes::

        >>> parse_value("1.5u")
        1.5e-06
        >>> parse_value("20k")
        20000.0
        >>> parse_value("3meg")
        3000000.0
        >>> parse_value(42)
        42.0

    Anything after the scale suffix (a unit name such as ``F`` or ``Ohm``)
    is ignored, matching SPICE behaviour.
    """
    if isinstance(text, (int, float)):
        return float(text)
    s = text.strip().lower()
    if not s:
        raise UnitError("empty numeric literal")
    # Split the leading numeric part from the suffix.
    idx = len(s)
    for i, ch in enumerate(s):
        if ch.isalpha() and not (ch in "e" and _is_exponent(s, i)):
            idx = i
            break
    num_part, suffix = s[:idx], s[idx:]
    try:
        value = float(num_part)
    except ValueError as exc:
        raise UnitError(f"cannot parse numeric literal {text!r}") from exc
    if not suffix:
        return value
    for name, scale in _SUFFIXES:
        if suffix.startswith(name):
            return value * scale
    # Unknown leading letter: treat the whole suffix as a unit name.
    return value


def _is_exponent(s: str, i: int) -> bool:
    """True when ``s[i]`` is the 'e' of an exponent like ``1e-6``."""
    if i == 0 or not (s[i] == "e"):
        return False
    if not (s[i - 1].isdigit() or s[i - 1] == "."):
        return False
    rest = s[i + 1:i + 2]
    return rest.isdigit() or rest in {"+", "-"}


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an SI prefix: ``format_si(1.5e-6, 'F')`` → ``'1.5uF'``.

    Zero, NaN and infinities are rendered literally.
    """
    if value == 0:
        return f"0{unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value}{unit}"
    mag = abs(value)
    for scale, prefix in _FORMAT_STEPS:
        if mag >= scale:
            scaled = value / scale
            return f"{_trim(scaled, digits)}{prefix}{unit}"
    scale, prefix = _FORMAT_STEPS[-1]
    return f"{_trim(value / scale, digits)}{prefix}{unit}"


def _trim(value: float, digits: int) -> str:
    text = f"{value:.{digits}g}"
    return text


def db20(ratio: float) -> float:
    """Voltage ratio → decibels (20·log10)."""
    if ratio <= 0:
        return float("-inf")
    return 20.0 * math.log10(ratio)


def from_db20(db: float) -> float:
    """Decibels → voltage ratio."""
    return 10.0 ** (db / 20.0)
