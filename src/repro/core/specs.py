"""Performance specifications and scalarizing cost functions.

Every frontend tool in the DAC'96 tutorial — design plans, OPTIMAN-style
equation optimizers, FRIDGE-style simulation optimizers and ASTRX/OBLX —
consumes the same thing: a set of *specifications* (hard inequality
constraints such as ``gain >= 70 dB``) plus *objectives* (quantities to
minimize, such as power).  This module defines that vocabulary once.

The scalarization follows the ASTRX/OBLX good-value/bad-value recipe
[Ochotta et al.]: each constraint contributes a normalized hinge penalty,
each objective a normalized value, and the weighted sum is the cost the
numerical search minimizes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class SpecKind(enum.Enum):
    """How a specification constrains or scores a performance number."""

    MIN = "min"            # performance must be >= value
    MAX = "max"            # performance must be <= value
    EQUAL = "equal"        # performance must equal value (within tolerance)
    MINIMIZE = "minimize"  # objective: smaller is better
    MAXIMIZE = "maximize"  # objective: larger is better


@dataclass(frozen=True)
class Spec:
    """One performance specification.

    Parameters
    ----------
    name:
        Performance-metric name (``"gain_db"``, ``"power"``, ...).
    kind:
        Constraint sense or objective direction.
    value:
        Bound for constraints; normalizing "good value" for objectives
        (may be ``None`` for objectives, in which case 1.0 is used).
    weight:
        Relative importance in the scalarized cost.
    tolerance:
        Relative tolerance used by :attr:`SpecKind.EQUAL`.
    unit:
        Display unit, for reports only.
    """

    name: str
    kind: SpecKind
    value: float | None = None
    weight: float = 1.0
    tolerance: float = 0.01
    unit: str = ""

    # -- convenience constructors ------------------------------------
    @staticmethod
    def at_least(name: str, value: float, weight: float = 1.0, unit: str = "") -> "Spec":
        return Spec(name, SpecKind.MIN, value, weight, unit=unit)

    @staticmethod
    def at_most(name: str, value: float, weight: float = 1.0, unit: str = "") -> "Spec":
        return Spec(name, SpecKind.MAX, value, weight, unit=unit)

    @staticmethod
    def equal(name: str, value: float, tolerance: float = 0.01,
              weight: float = 1.0, unit: str = "") -> "Spec":
        return Spec(name, SpecKind.EQUAL, value, weight, tolerance, unit)

    @staticmethod
    def minimize(name: str, good: float | None = None,
                 weight: float = 1.0, unit: str = "") -> "Spec":
        return Spec(name, SpecKind.MINIMIZE, good, weight, unit=unit)

    @staticmethod
    def maximize(name: str, good: float | None = None,
                 weight: float = 1.0, unit: str = "") -> "Spec":
        return Spec(name, SpecKind.MAXIMIZE, good, weight, unit=unit)

    # -- evaluation ----------------------------------------------------
    def is_constraint(self) -> bool:
        return self.kind in (SpecKind.MIN, SpecKind.MAX, SpecKind.EQUAL)

    def is_objective(self) -> bool:
        return not self.is_constraint()

    def satisfied(self, measured: float) -> bool:
        """True when a constraint is met (objectives are always 'met')."""
        if not self.is_constraint():
            return True
        if measured is None or math.isnan(measured):
            return False
        assert self.value is not None
        if self.kind is SpecKind.MIN:
            return measured >= self.value
        if self.kind is SpecKind.MAX:
            return measured <= self.value
        ref = abs(self.value) if self.value != 0 else 1.0
        return abs(measured - self.value) <= self.tolerance * ref

    def violation(self, measured: float) -> float:
        """Normalized constraint violation (0 when satisfied).

        The normalization divides by ``|value|`` so that a spec violated by
        10% contributes 0.1 regardless of its physical magnitude.
        """
        if not self.is_constraint():
            return 0.0
        if measured is None or math.isnan(measured):
            return 10.0  # failed evaluation: large fixed penalty
        assert self.value is not None
        ref = abs(self.value) if self.value != 0 else 1.0
        if self.kind is SpecKind.MIN:
            return max(0.0, (self.value - measured) / ref)
        if self.kind is SpecKind.MAX:
            return max(0.0, (measured - self.value) / ref)
        return max(0.0, abs(measured - self.value) / ref - self.tolerance)

    def objective_value(self, measured: float) -> float:
        """Normalized objective contribution (smaller is better)."""
        if not self.is_objective():
            return 0.0
        if measured is None or math.isnan(measured):
            return 10.0
        good = self.value if self.value not in (None, 0) else 1.0
        scaled = measured / good
        if self.kind is SpecKind.MAXIMIZE:
            # Guard against division blow-up near zero.
            return 1.0 / max(scaled, 1e-12)
        return scaled


@dataclass
class SpecSet:
    """A collection of specifications evaluated against performance dicts."""

    specs: list[Spec] = field(default_factory=list)
    constraint_weight: float = 10.0

    def __post_init__(self) -> None:
        names = [s.name + ":" + s.kind.value for s in self.specs]
        if len(names) != len(set(names)):
            raise ValueError("duplicate spec entries in SpecSet")

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def add(self, spec: Spec) -> "SpecSet":
        self.specs.append(spec)
        return self

    @property
    def constraints(self) -> list[Spec]:
        return [s for s in self.specs if s.is_constraint()]

    @property
    def objectives(self) -> list[Spec]:
        return [s for s in self.specs if s.is_objective()]

    def metric_names(self) -> list[str]:
        seen: list[str] = []
        for s in self.specs:
            if s.name not in seen:
                seen.append(s.name)
        return seen

    def all_satisfied(self, performance: dict[str, float]) -> bool:
        return all(
            s.satisfied(performance.get(s.name, float("nan")))
            for s in self.constraints
        )

    def total_violation(self, performance: dict[str, float]) -> float:
        return sum(
            s.weight * s.violation(performance.get(s.name, float("nan")))
            for s in self.constraints
        )

    def cost(self, performance: dict[str, float]) -> float:
        """ASTRX-style scalarized cost: objectives + weighted hinge penalties."""
        obj = sum(
            s.weight * s.objective_value(performance.get(s.name, float("nan")))
            for s in self.objectives
        )
        pen = self.total_violation(performance)
        return obj + self.constraint_weight * pen

    def report(self, performance: dict[str, float]) -> "SpecReport":
        rows = []
        for s in self.specs:
            measured = performance.get(s.name, float("nan"))
            rows.append(SpecRow(
                spec=s,
                measured=measured,
                satisfied=s.satisfied(measured),
                violation=s.violation(measured),
            ))
        return SpecReport(rows=rows, cost=self.cost(performance))


@dataclass(frozen=True)
class SpecRow:
    spec: Spec
    measured: float
    satisfied: bool
    violation: float


@dataclass
class SpecReport:
    """Tabular spec-vs-measured summary, printable for EXPERIMENTS.md."""

    rows: list[SpecRow]
    cost: float

    @property
    def all_satisfied(self) -> bool:
        return all(r.satisfied for r in self.rows if r.spec.is_constraint())

    def to_text(self) -> str:
        lines = [f"{'metric':<18}{'kind':<10}{'target':>12}{'measured':>14}  ok"]
        for r in self.rows:
            target = "-" if r.spec.value is None else f"{r.spec.value:.4g}"
            ok = "yes" if r.satisfied else ("-" if r.spec.is_objective() else "NO")
            lines.append(
                f"{r.spec.name:<18}{r.spec.kind.value:<10}"
                f"{target:>12}{r.measured:>14.4g}  {ok}"
            )
        lines.append(f"cost = {self.cost:.6g}")
        return "\n".join(lines)
