"""`repro.macro` — end-to-end memory-macro flow over the backend.

The OpenRAM-style composition of the reproduction's backend half: a
parametric array tiler (:mod:`repro.macro.tiling`), a grid-track
supply-mesh router with A* blockage avoidance and via stitching
(:mod:`repro.macro.mesh`), IR/EM/droop signoff with mesh density as the
annealed design variable (:mod:`repro.macro.signoff`), and the whole
flow as a sharded serve workload (:mod:`repro.macro.workload`).
"""

from repro.macro.mesh import (
    MeshResult,
    MeshRoutingError,
    MeshSpec,
    RailRoute,
    assign_rail_tracks,
    route_mesh,
)
from repro.macro.signoff import (
    MacroSignoff,
    SignoffSpec,
    macro_flow,
    optimize_mesh,
    signoff_mesh,
    uniform_mesh,
)
from repro.macro.tiling import (
    BlockageMap,
    MacroSpec,
    MacroTilingError,
    TiledMacro,
    tile_macro,
)
from repro.macro.workload import (
    MacroBatcher,
    MacroEvaluator,
    macro_workload,
)

__all__ = [
    "BlockageMap",
    "MacroBatcher",
    "MacroEvaluator",
    "MacroSignoff",
    "MacroSpec",
    "MacroTilingError",
    "MeshResult",
    "MeshRoutingError",
    "MeshSpec",
    "RailRoute",
    "SignoffSpec",
    "TiledMacro",
    "assign_rail_tracks",
    "macro_flow",
    "macro_workload",
    "optimize_mesh",
    "route_mesh",
    "signoff_mesh",
    "tile_macro",
    "uniform_mesh",
]
