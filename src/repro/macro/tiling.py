"""Parametric memory-macro array tiling — the OpenRAM-style front half.

Generalizes :mod:`repro.layout.caparray` from a matched capacitor array
into a parametric unit-cell tiler: ``rows x cols`` bitcell (or unit-cap)
tiles with well/strap rows every ``strap_every`` rows, per-column bitline
pins and per-row wordline pins.  The tiler emits two artifacts the rest
of the macro flow consumes:

* a flat :class:`~repro.layout.geometry.Cell` with the array geometry
  (diffusion per unit, poly wordlines, metal1 bitlines, nwell strap
  rows, edge pins);
* a :class:`BlockageMap` over the *routing-track grid* — one vertical
  track per column boundary, one horizontal track per row boundary —
  recording which track crossings the array wiring keeps free.  Supply
  rails may only run along strap corridors (the well/strap rows and the
  strap columns); deterministic keepouts for the sense-amp strip and the
  column-decoder notch block parts of otherwise-free corridors, which is
  what forces the mesh router's A* detours (see
  :mod:`repro.macro.mesh`).

Every quantity is a pure function of :class:`MacroSpec`, so tiling the
same spec twice is byte-stable — the property the workload cache keys
and the differential tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.trace import current_tracer
from repro.layout.geometry import Cell, Rect
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_CAPTOP,
    LAYER_METAL1,
    LAYER_NDIFF,
    LAYER_NWELL,
    LAYER_POLY,
    Technology,
)


class MacroTilingError(ValueError):
    """A :class:`MacroSpec` that cannot be tiled (non-positive geometry)."""


def _count(name: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(name, n)


@dataclass(frozen=True)
class MacroSpec:
    """Parametric description of one memory-macro array.

    ``strap_every`` controls the supply-corridor pitch: every
    ``strap_every``-th row/column boundary is a well/strap corridor the
    power mesh may occupy.  ``kind`` selects the unit cell: ``"bitcell"``
    (diffusion + poly wordline + metal1 bitline) or ``"cap"`` (the
    double-poly unit of the capacitor arrays).
    """

    rows: int
    cols: int
    strap_every: int = 8
    kind: str = "bitcell"
    name: str = "macro"
    unit_width_nm: int | None = None
    unit_height_nm: int | None = None

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise MacroTilingError(
                f"array must be at least 1x1, got {self.rows}x{self.cols}")
        if self.strap_every <= 0:
            raise MacroTilingError(
                f"strap_every must be positive, got {self.strap_every}")
        if self.kind not in ("bitcell", "cap"):
            raise MacroTilingError(f"unknown unit kind {self.kind!r}")

    def describe(self) -> dict:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "strap_every": self.strap_every,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class BlockageMap:
    """Free/blocked state of the routing-track grid over the array.

    Tracks are the unit-cell boundaries: ``nx = cols + 1`` vertical
    tracks, ``ny = rows + 1`` horizontal tracks.  A crossing ``(i, j)``
    is free when it lies on a strap corridor (``i`` a strap column or
    ``j`` a strap row) and is not inside a keepout region.
    """

    nx: int
    ny: int
    free_v: frozenset[int]
    free_h: frozenset[int]
    keepouts: frozenset[tuple[int, int]]

    def in_bounds(self, i: int, j: int) -> bool:
        return 0 <= i < self.nx and 0 <= j < self.ny

    def is_free(self, i: int, j: int) -> bool:
        if not self.in_bounds(i, j):
            return False
        if (i, j) in self.keepouts:
            return False
        return i in self.free_v or j in self.free_h

    @property
    def free_v_tracks(self) -> list[int]:
        return sorted(self.free_v)

    @property
    def free_h_tracks(self) -> list[int]:
        return sorted(self.free_h)


@dataclass
class TiledMacro:
    """One tiled array: geometry, blockage map, pins, and supply taps."""

    spec: MacroSpec
    cell: Cell
    blockages: BlockageMap
    pitch_x: int
    pitch_y: int
    wordline_ports: list[str] = field(default_factory=list)
    bitline_ports: list[str] = field(default_factory=list)
    #: (i, j) track crossing -> number of unit cells drawing supply there.
    taps: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def width_nm(self) -> int:
        return self.spec.cols * self.pitch_x

    @property
    def height_nm(self) -> int:
        return self.spec.rows * self.pitch_y

    def track_xy(self, i: int, j: int) -> tuple[int, int]:
        """Physical position of track crossing ``(i, j)`` in nm."""
        return i * self.pitch_x, j * self.pitch_y


def _strap_tracks(n_units: int, strap_every: int) -> frozenset[int]:
    """Strap corridors: every ``strap_every``-th boundary plus both edges."""
    tracks = {0, n_units}
    tracks.update(range(0, n_units + 1, strap_every))
    return frozenset(tracks)


def _keepouts(spec: MacroSpec, free_v: frozenset[int],
              free_h: frozenset[int]) -> frozenset[tuple[int, int]]:
    """Deterministic keepout crossings carved out of free corridors.

    * the **sense-amp strip** blocks the middle third of the bottom
      edge corridor (``j = 0``) — the bottom boundary rail must detour
      over the strip through the first interior strap row;
    * the **column-decoder notch** blocks the middle sixth of the
      central interior strap row.

    Corners are never blocked (the mesh ring's pad nodes live there).
    """
    cols, rows = spec.cols, spec.rows
    keep: set[tuple[int, int]] = set()
    lo, hi = cols // 3, (2 * cols) // 3
    for i in range(lo, hi + 1):
        if 0 < i < cols:
            keep.add((i, 0))
    interior_h = sorted(j for j in free_h if 0 < j < rows)
    if interior_h:
        mid = interior_h[len(interior_h) // 2]
        nlo, nhi = (5 * cols) // 12, (7 * cols) // 12
        for i in range(nlo, nhi + 1):
            if 0 < i < cols:
                keep.add((i, mid))
    return frozenset(keep)


def _nearest_track(sorted_tracks: list[int], position: int) -> int:
    """The free track nearest a unit index (deterministic tie: lower)."""
    return min(sorted_tracks, key=lambda t: (abs(t - position), t))


def tile_macro(spec: MacroSpec,
               tech: Technology = DEFAULT_TECH) -> TiledMacro:
    """Tile one macro array from its spec.

    Counts ``macrogen.tiled`` / ``macrogen.units`` on the active tracer.
    """
    unit_w = spec.unit_width_nm or tech.L(16)
    unit_h = spec.unit_height_nm or tech.L(16)
    if unit_w <= 0 or unit_h <= 0:
        raise MacroTilingError(
            f"unit cell must have positive size, got {unit_w}x{unit_h}")
    rows, cols = spec.rows, spec.cols
    cell = Cell(spec.name)
    # Unit cells: one diffusion (or cap-plate) rect per unit.
    inset = min(unit_w, unit_h) // 8
    for r in range(rows):
        for c in range(cols):
            x0, y0 = c * unit_w, r * unit_h
            body = Rect(x0 + inset, y0 + inset,
                        x0 + unit_w - inset, y0 + unit_h - inset)
            if spec.kind == "cap":
                cell.add_shape(LAYER_POLY, body, f"unit_{r}_{c}_bot")
                cell.add_shape(LAYER_CAPTOP, body.expanded(-inset),
                               f"unit_{r}_{c}_top")
            else:
                cell.add_shape(LAYER_NDIFF, body, f"cell_{r}_{c}")
    # Wordlines: one poly stripe per row, pinned on the left edge.
    wl_w = tech.min_width_poly
    wordline_ports: list[str] = []
    for r in range(rows):
        yc = r * unit_h + unit_h // 2
        stripe = Rect(0, yc - wl_w // 2, cols * unit_w, yc + wl_w // 2)
        cell.add_shape(LAYER_POLY, stripe, f"wl_{r}")
        cell.add_port(f"wl_{r}", LAYER_POLY,
                      Rect(0, yc - wl_w // 2, wl_w, yc + wl_w // 2),
                      f"wl_{r}")
        wordline_ports.append(f"wl_{r}")
    # Bitlines: one metal1 stripe per column, pinned on the bottom edge.
    bl_w = tech.min_width_metal
    bitline_ports: list[str] = []
    for c in range(cols):
        xc = c * unit_w + unit_w // 2
        stripe = Rect(xc - bl_w // 2, 0, xc + bl_w // 2, rows * unit_h)
        cell.add_shape(LAYER_METAL1, stripe, f"bl_{c}")
        cell.add_port(f"bl_{c}", LAYER_METAL1,
                      Rect(xc - bl_w // 2, 0, xc + bl_w // 2, bl_w),
                      f"bl_{c}")
        bitline_ports.append(f"bl_{c}")
    # Well/strap rows along every horizontal strap corridor.
    free_h = _strap_tracks(rows, spec.strap_every)
    free_v = _strap_tracks(cols, spec.strap_every)
    strap_h = tech.well_margin
    for j in sorted(free_h):
        yc = j * unit_h
        cell.add_shape(LAYER_NWELL,
                       Rect(0, yc - strap_h // 2, cols * unit_w,
                            yc + strap_h // 2),
                       "strap")
    keepouts = _keepouts(spec, free_v, free_h)
    blockages = BlockageMap(cols + 1, rows + 1, free_v, free_h, keepouts)

    # Supply taps: each unit cell draws from the nearest free strap
    # crossing; aggregate unit counts per crossing (keepout crossings
    # redirect to the nearest free crossing on the same corridor pair).
    v_tracks = sorted(free_v)
    h_tracks = sorted(free_h)
    taps: dict[tuple[int, int], int] = {}
    nearest_v = [_nearest_track(v_tracks, c) for c in range(cols)]
    nearest_h = [_nearest_track(h_tracks, r) for r in range(rows)]
    for r in range(rows):
        for c in range(cols):
            i, j = nearest_v[c], nearest_h[r]
            if not blockages.is_free(i, j):
                candidates = [(ii, jj) for ii in v_tracks for jj in h_tracks
                              if blockages.is_free(ii, jj)]
                if not candidates:
                    raise MacroTilingError(
                        "keepouts block every strap crossing")
                i, j = min(candidates,
                           key=lambda ij: (abs(ij[0] - i) + abs(ij[1] - j),
                                           ij))
            taps[(i, j)] = taps.get((i, j), 0) + 1
    _count("macrogen.tiled")
    _count("macrogen.units", rows * cols)
    return TiledMacro(spec, cell, blockages, unit_w, unit_h,
                      wordline_ports, bitline_ports, taps)
