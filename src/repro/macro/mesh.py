"""Grid-track supply-mesh routing over a tiled macro array.

The OpenRAM-style back half: horizontal rail tracks on one layer,
vertical rail tracks on a second layer, vias stitching the two planes at
every crossing — upgraded from the channel/global-router idioms to
pitch- and blockage-aware *grid tracks*:

* **track assignment** spreads the requested number of rails evenly over
  the strap corridors the :class:`~repro.macro.tiling.BlockageMap`
  leaves free (the boundary corridors are always taken, forming the
  peripheral ring RAIL's grids are built around);
* **A\\* expansion** routes each rail along its nominal track and jogs
  around keepouts (sense-amp strip, decoder notch) through neighbouring
  free tracks — the detour cost keeps rails straight wherever the
  blockage map allows;
* the result is a :class:`~repro.msystem.powergrid.PowerGrid`-compatible
  segment graph: one node per (layer, track crossing), one
  :class:`~repro.msystem.powergrid.GridSegment` per rail step, one via
  segment per stitched crossing, pads at the four ring corners.

Determinism: track assignment, A\\* tie-breaking and node numbering are
all pure functions of (macro, spec) — the same mesh routes to the same
byte-identical segment graph every time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.engine.trace import current_tracer
from repro.layout.geometry import Cell, Rect
from repro.layout.technology import LAYER_METAL1, LAYER_METAL2, LAYER_VIA1
from repro.macro.tiling import TiledMacro
from repro.msystem.powergrid import SHEET_RES, GridSegment, PowerGrid


class MeshRoutingError(RuntimeError):
    """The mesh cannot be routed (no legal track, or no A* path)."""


def _count(name: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(name, n)


#: Via stitch equivalent: a short fat segment whose sheet resistance
#: matches one via cut (~2.5 Ohm through ``SHEET_RES``).
VIA_WIDTH_NM = 4_000
VIA_EQUIV_LENGTH_NM = int(round(2.5 * VIA_WIDTH_NM / SHEET_RES))

#: A* costs: every step costs the step itself; vertical jogs (for a
#: horizontal rail) and distance from the nominal track are penalized so
#: rails stay straight wherever the blockage map allows.
_JOG_COST = 2.0
_OFFTRACK_COST = 0.5


@dataclass(frozen=True)
class MeshSpec:
    """Design-variable view of one supply mesh.

    ``h_rails`` / ``v_rails`` are the *requested* rail counts (clamped
    to the corridors the blockage map actually offers — the achieved
    counts live on :class:`MeshResult`); the widths size every rail of
    that orientation.  Density and width are exactly the knobs
    :func:`repro.macro.signoff.optimize_mesh` anneals over.
    """

    h_rails: int
    v_rails: int
    h_width_nm: int
    v_width_nm: int

    def __post_init__(self) -> None:
        if self.h_rails < 2 or self.v_rails < 2:
            raise MeshRoutingError(
                f"a mesh needs >= 2 rails per orientation, got "
                f"{self.h_rails}x{self.v_rails}")
        if self.h_width_nm <= 0 or self.v_width_nm <= 0:
            raise MeshRoutingError(
                f"rail widths must be positive, got "
                f"{self.h_width_nm}/{self.v_width_nm}")

    def describe(self) -> dict:
        return {
            "h_rails": self.h_rails,
            "v_rails": self.v_rails,
            "h_width_nm": self.h_width_nm,
            "v_width_nm": self.v_width_nm,
        }


@dataclass
class RailRoute:
    """One routed rail: its nominal track and the A*-expanded path."""

    name: str
    orientation: str                 # "h" | "v"
    track: int
    path: list[tuple[int, int]]
    detoured: bool


@dataclass
class MeshResult:
    """A routed mesh: rails, vias, and the PowerGrid-compatible graph."""

    macro: TiledMacro
    spec: MeshSpec
    rails: list[RailRoute]
    node_names: list[str]
    #: node index -> (layer, i, j)
    node_pos: list[tuple[str, int, int]]
    rail_segments: list[GridSegment]
    via_segments: list[GridSegment]
    pad_nodes: list[int]
    cell: Cell
    blockage_violations: int = 0
    _index: dict[tuple[str, int, int], int] = field(default_factory=dict,
                                                    repr=False)

    @property
    def vias(self) -> int:
        return len(self.via_segments)

    @property
    def segments(self) -> list[GridSegment]:
        return self.rail_segments + self.via_segments

    def metal_area(self) -> int:
        """Rail metal only — via equivalents are electrical stand-ins."""
        return sum(s.metal_area for s in self.rail_segments)

    def node_at(self, layer: str, i: int, j: int) -> int | None:
        return self._index.get((layer, i, j))

    def is_fully_stitched(self) -> bool:
        """Every mesh node reaches the pads through the segment graph."""
        n = len(self.node_names)
        if n == 0:
            return False
        parent = list(range(n))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for seg in self.segments:
            ra, rb = find(seg.node_a), find(seg.node_b)
            if ra != rb:
                parent[ra] = rb
        root = find(self.pad_nodes[0])
        return all(find(k) == root for k in range(n))

    def nearest_node(self, layer: str, i: int, j: int) -> int:
        """Closest existing node on ``layer`` (deterministic ties)."""
        best = None
        for (lay, ni, nj), idx in sorted(self._index.items()):
            if lay != layer:
                continue
            d = abs(ni - i) + abs(nj - j)
            if best is None or d < best[0]:
                best = (d, idx)
        if best is None:
            raise MeshRoutingError(f"mesh has no nodes on layer {layer!r}")
        return best[1]

    def build_power_grid(self, load_currents: dict[int, float],
                         peak_currents: dict[int, float],
                         analog_nodes: list[int],
                         vdd: float = 3.3,
                         extra_decap: dict[int, float] | None = None,
                         ) -> PowerGrid:
        return PowerGrid(self.segments, list(self.node_names),
                         list(self.pad_nodes), dict(load_currents),
                         dict(peak_currents), list(analog_nodes), vdd,
                         dict(extra_decap or {}))


# ----------------------------------------------------------------------
# track assignment
# ----------------------------------------------------------------------

def assign_rail_tracks(free_tracks: list[int], requested: int) -> list[int]:
    """Spread ``requested`` rails over the free corridors.

    Boundary corridors are always taken (the ring); interior rails snap
    to the free corridor nearest their ideal uniform position, expanding
    outward when the ideal corridor is taken — the grid-track analogue
    of the left-edge track scan.  Returns the sorted chosen tracks
    (``<= requested`` when corridors run out).
    """
    if len(free_tracks) < 2:
        raise MeshRoutingError(
            f"need >= 2 free corridors for a ring, got {free_tracks}")
    tracks = sorted(free_tracks)
    chosen = {tracks[0], tracks[-1]}
    want = max(2, requested)
    span = tracks[-1] - tracks[0]
    k = 1
    while len(chosen) < min(want, len(tracks)) and k < want - 1:
        ideal = tracks[0] + (span * k) // (want - 1)
        candidates = sorted((t for t in tracks if t not in chosen),
                            key=lambda t: (abs(t - ideal), t))
        if candidates:
            chosen.add(candidates[0])
        k += 1
    return sorted(chosen)


def _component(blockages, seed: tuple[int, int]) -> set[tuple[int, int]]:
    """Connected component of free crossings containing ``seed`` (BFS)."""
    from collections import deque
    queue = deque([seed])
    seen = {seed}
    while queue:
        i, j = queue.popleft()
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nxt = (i + di, j + dj)
            if nxt not in seen and blockages.is_free(*nxt):
                seen.add(nxt)
                queue.append(nxt)
    return seen


def _rail_endpoints(blockages, orientation: str,
                    track: int) -> tuple[tuple[int, int], tuple[int, int]]:
    """Endpoints for a rail: the reachable span of its nominal track.

    A keepout over an edge crossing (the sense-amp strip eats parts of
    the bottom corridor) shortens the rail rather than killing it, and a
    keepout that *disconnects* the corridor (the decoder notch on a
    small array) drops the isolated stub: the rail spans the first and
    last track crossings inside the largest connected component.  A
    track with fewer than two connected free crossings cannot carry a
    rail at all.
    """
    if orientation == "h":
        cells = [(i, track) for i in range(blockages.nx)]
    else:
        cells = [(track, j) for j in range(blockages.ny)]
    free = [c for c in cells if blockages.is_free(*c)]
    if len(free) < 2:
        raise MeshRoutingError(
            f"{orientation}-track {track} has {len(free)} free crossings; "
            f"a rail needs at least 2")
    components: list[list[tuple[int, int]]] = []
    assigned: set[tuple[int, int]] = set()
    for crossing in free:
        if crossing in assigned:
            continue
        comp = _component(blockages, crossing)
        assigned |= comp
        components.append([c for c in free if c in comp])
    best = max(components, key=len)
    if len(best) < 2:
        raise MeshRoutingError(
            f"{orientation}-track {track} is disconnected into stubs of "
            f"< 2 crossings; it cannot carry a rail")
    return best[0], best[-1]


# ----------------------------------------------------------------------
# A* rail expansion
# ----------------------------------------------------------------------

def _astar_rail(blockages, start: tuple[int, int], goal: tuple[int, int],
                nominal: int, orientation: str) -> list[tuple[int, int]]:
    """A* from start to goal over free crossings, biased to the track.

    ``nominal`` is the rail's assigned track index (a ``j`` for
    horizontal rails, an ``i`` for vertical ones); off-track crossings
    and jogs pay extra so the rail only leaves its corridor to clear a
    keepout.  Deterministic: the heap breaks ties on (g, node).
    """
    if not blockages.is_free(*start) or not blockages.is_free(*goal):
        raise MeshRoutingError(
            f"rail endpoint blocked: {start} -> {goal}")

    def heuristic(node: tuple[int, int]) -> float:
        return abs(node[0] - goal[0]) + abs(node[1] - goal[1])

    def offtrack(node: tuple[int, int]) -> float:
        axis = node[1] if orientation == "h" else node[0]
        return _OFFTRACK_COST * abs(axis - nominal)

    open_heap: list[tuple[float, float, tuple[int, int]]] = [
        (heuristic(start), 0.0, start)]
    g_score: dict[tuple[int, int], float] = {start: 0.0}
    parent: dict[tuple[int, int], tuple[int, int] | None] = {start: None}
    while open_heap:
        f, g, node = heapq.heappop(open_heap)
        if g > g_score.get(node, float("inf")):
            continue
        if node == goal:
            path = [node]
            while parent[node] is not None:
                node = parent[node]
                path.append(node)
            path.reverse()
            return path
        i, j = node
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nxt = (i + di, j + dj)
            if not blockages.is_free(*nxt):
                continue
            step = 1.0 + offtrack(nxt)
            along = (dj == 0) if orientation == "h" else (di == 0)
            if not along:
                step += _JOG_COST
            ng = g + step
            if ng < g_score.get(nxt, float("inf")):
                g_score[nxt] = ng
                parent[nxt] = node
                heapq.heappush(open_heap, (ng + heuristic(nxt), ng, nxt))
    raise MeshRoutingError(
        f"no A* path for {orientation}-rail on track {nominal} "
        f"({start} -> {goal}): blockage map disconnects the corridor")


# ----------------------------------------------------------------------
# mesh routing
# ----------------------------------------------------------------------

def route_mesh(macro: TiledMacro, spec: MeshSpec) -> MeshResult:
    """Route the supply mesh over a tiled macro.

    Counts ``macrogen.rails_routed`` / ``macrogen.rail_detours`` /
    ``macrogen.vias`` / ``macrogen.blockage_violations`` on the active
    tracer.  Raises :class:`MeshRoutingError` when a rail cannot be
    assigned or expanded.
    """
    blockages = macro.blockages
    h_tracks = assign_rail_tracks(blockages.free_h_tracks, spec.h_rails)
    v_tracks = assign_rail_tracks(blockages.free_v_tracks, spec.v_rails)

    node_names: list[str] = []
    node_pos: list[tuple[str, int, int]] = []
    index: dict[tuple[str, int, int], int] = {}

    def node(layer: str, i: int, j: int) -> int:
        key = (layer, i, j)
        idx = index.get(key)
        if idx is None:
            idx = len(node_names)
            index[key] = idx
            node_names.append(f"{layer}_{i}_{j}")
            node_pos.append(key)
        return idx

    rails: list[RailRoute] = []
    rail_segments: list[GridSegment] = []
    seen_pairs: set[tuple[int, int]] = set()
    violations = 0
    cell = Cell(f"{macro.spec.name}_mesh")

    def add_segment(name: str, a: int, b: int, length: int,
                    width: int) -> None:
        pair = (min(a, b), max(a, b))
        if pair in seen_pairs:
            return  # overlapping rails share the same physical metal
        seen_pairs.add(pair)
        rail_segments.append(GridSegment(name, a, b, max(length, 1), width))

    def route_one(orientation: str, track: int, width: int) -> None:
        nonlocal violations
        layer = "h" if orientation == "h" else "v"
        start, goal = _rail_endpoints(blockages, orientation, track)
        path = _astar_rail(blockages, start, goal, track, orientation)
        detoured = any((p[1] != track if orientation == "h"
                        else p[0] != track) for p in path)
        violations += sum(1 for p in path if not blockages.is_free(*p))
        gds_layer = LAYER_METAL1 if orientation == "h" else LAYER_METAL2
        for k in range(len(path) - 1):
            (i1, j1), (i2, j2) = path[k], path[k + 1]
            a = node(layer, i1, j1)
            b = node(layer, i2, j2)
            x1, y1 = macro.track_xy(i1, j1)
            x2, y2 = macro.track_xy(i2, j2)
            length = abs(x2 - x1) + abs(y2 - y1)
            add_segment(f"{orientation}{track}_{k}", a, b, length, width)
            half = width // 2
            cell.add_shape(gds_layer,
                           Rect(min(x1, x2) - half, min(y1, y2) - half,
                                max(x1, x2) + half, max(y1, y2) + half),
                           "vdd")
        rails.append(RailRoute(f"{orientation}{track}", orientation, track,
                               path, detoured))

    for track in h_tracks:
        route_one("h", track, spec.h_width_nm)
    for track in v_tracks:
        route_one("v", track, spec.v_width_nm)

    # Via stitching: every crossing where both planes own a node.
    via_segments: list[GridSegment] = []
    for (layer, i, j), idx in sorted(index.items()):
        if layer != "h":
            continue
        other = index.get(("v", i, j))
        if other is None:
            continue
        via_segments.append(GridSegment(
            f"via_{i}_{j}", idx, other, VIA_EQUIV_LENGTH_NM, VIA_WIDTH_NM))
        x, y = macro.track_xy(i, j)
        q = VIA_WIDTH_NM // 2
        cell.add_shape(LAYER_VIA1, Rect(x - q, y - q, x + q, y + q), "vdd")

    corners = [(v_tracks[0], h_tracks[0]),
               (v_tracks[-1], h_tracks[0]),
               (v_tracks[-1], h_tracks[-1]),
               (v_tracks[0], h_tracks[-1])]
    pad_nodes: list[int] = []
    for i, j in corners:
        idx = index.get(("h", i, j))
        if idx is None:
            raise MeshRoutingError(
                f"ring corner ({i}, {j}) has no horizontal-rail node")
        pad_nodes.append(idx)

    _count("macrogen.rails_routed", len(rails))
    _count("macrogen.rail_detours", sum(1 for r in rails if r.detoured))
    _count("macrogen.vias", len(via_segments))
    if violations:
        _count("macrogen.blockage_violations", violations)
    result = MeshResult(macro, spec, rails, node_names, node_pos,
                        rail_segments, via_segments, pad_nodes, cell,
                        blockage_violations=violations, _index=index)
    if not result.is_fully_stitched():
        raise MeshRoutingError(
            "routed mesh is not fully stitched: some rail never meets "
            "the via'd ring")
    return result
