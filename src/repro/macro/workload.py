"""Serve-layer integration: memory macros as a `Workload`.

The fleet's heavyweight *backend* workload type: a request names an
array geometry plus a mesh sizing, the fleet tiles, routes and signs it
off.  Points are dicts::

    {"array": {"rows": 32, "cols": 32, "strap_every": 8, "kind": "bitcell"},
     "mesh":  {"h_rails": 4, "v_rails": 4,
               "h_width_nm": 4000, "v_width_nm": 4000},
     "signoff": {...}}                     # optional SignoffSpec overrides

Everything downstream of the point is deterministic, so the
content-addressed cache key is just the canonical encoding of (array,
mesh, signoff) — two shards asked for the same macro share one signoff
through the cross-shard store.  :class:`MacroBatcher` buckets cache
misses by array geometry so same-geometry requests reuse one
:class:`~repro.macro.tiling.TiledMacro` instead of re-tiling per point.
"""

from __future__ import annotations

from repro.engine.cache import canonical_key
from repro.macro.mesh import MeshSpec, route_mesh
from repro.macro.signoff import SignoffSpec, signoff_mesh
from repro.macro.tiling import MacroSpec, TiledMacro, tile_macro
from repro.serve.broker import Workload

_MESH_KEYS = ("h_rails", "v_rails", "h_width_nm", "v_width_nm")


class MacroEvaluator:
    """Point → signoff summary over arbitrary macro geometries."""

    def __init__(self, max_cached_tilings: int = 8):
        self._tilings: dict[tuple, TiledMacro] = {}
        self._max_cached = max_cached_tilings

    def _split(self, point: dict) -> tuple[dict, dict, dict]:
        try:
            array = dict(point["array"])
            mesh = dict(point["mesh"])
        except (TypeError, KeyError):
            raise ValueError(
                "macro points are {'array': {...}, 'mesh': {...}} dicts, "
                f"got {point!r}") from None
        signoff = dict(point.get("signoff") or {})
        return array, mesh, signoff

    def _array_key(self, array: dict) -> tuple:
        return tuple(sorted(array.items()))

    def tiling_for(self, array: dict) -> TiledMacro:
        key = self._array_key(array)
        macro = self._tilings.get(key)
        if macro is None:
            macro = tile_macro(MacroSpec(**array))
            if len(self._tilings) >= self._max_cached:
                self._tilings.pop(next(iter(self._tilings)))
            self._tilings[key] = macro
        return macro

    def __call__(self, point: dict) -> dict:
        array, mesh, signoff = self._split(point)
        macro = self.tiling_for(array)
        result = signoff_mesh(macro, route_mesh(macro, MeshSpec(**mesh)),
                              SignoffSpec(**signoff))
        out = result.summary()
        out["array"] = macro.spec.describe()
        return out

    def cache_key(self, point: dict) -> str:
        array, mesh, signoff = self._split(point)
        return canonical_key(
            "macro",
            sorted(array.items()),
            [(k, mesh.get(k)) for k in _MESH_KEYS],
            sorted(signoff.items()))


class MacroBatcher:
    """Same-geometry batching: one tiling per group, not per point."""

    min_batch: int = 2

    def __init__(self, evaluator: MacroEvaluator):
        self.evaluator = evaluator

    def group(self, points: list[dict]) -> list[list[int]]:
        groups: dict[tuple, list[int]] = {}
        for i, point in enumerate(points):
            try:
                array, _, _ = self.evaluator._split(point)
                key = self.evaluator._array_key(array)
            except ValueError:
                key = ("__invalid__", i)
            groups.setdefault(key, []).append(i)
        return list(groups.values())

    def evaluate(self, points: list[dict]) -> list:
        array, _, _ = self.evaluator._split(points[0])
        self.evaluator.tiling_for(array)  # tile once, reused per point
        return [self.evaluator(p) for p in points]


def macro_workload(name: str = "macro", batched: bool = True) -> Workload:
    """Build the memory-macro serve workload (broker-registrable)."""
    evaluator = MacroEvaluator()
    batcher = MacroBatcher(evaluator) if batched else None
    return Workload(name=name, fn=evaluator,
                    key_fn=evaluator.cache_key, batcher=batcher)
