"""IR/EM/droop signoff and mesh-density optimization for macro meshes.

The RAIL half of the macro flow (paper §3, Fig. 3): the routed mesh
becomes a :class:`~repro.msystem.powergrid.PowerGrid` — unit-cell supply
taps turn into node load currents, the four ring corners into package
pads — and the existing sparse ``dc_solve`` / AWE ``transient_droop``
machinery verifies the three constraint families:

* **IR drop** at every tap node against ``max_ir_drop``;
* **EM** per rail segment against each segment's width-derived limit;
* **supply droop** at the analog victim node (the tap farthest from the
  pads) against ``max_droop``.

:func:`optimize_mesh` then makes mesh *density* the design variable: the
four knobs of :class:`~repro.macro.mesh.MeshSpec` (rail counts per
orientation + rail widths) anneal through
:func:`~repro.opt.anneal.anneal_continuous`, followed by the greedy
repair + shrink passes the rail synthesizer uses, minimizing rail metal
area subject to all three families.  :func:`uniform_mesh` is the
reference point — every strap corridor railed at one conservative width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.trace import current_tracer, span_if
from repro.macro.mesh import MeshResult, MeshRoutingError, MeshSpec, route_mesh
from repro.macro.tiling import MacroSpec, TiledMacro, tile_macro
from repro.msystem.powergrid import PowerGrid
from repro.opt.anneal import AnnealSchedule, ContinuousSpace, anneal_continuous


def _count(name: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(name, n)


@dataclass(frozen=True)
class SignoffSpec:
    """Electrical workload and limits for one macro signoff."""

    cell_avg_a: float = 1e-5        # average supply current per unit cell
    peak_ratio: float = 25.0        # switching peak = ratio x average
    max_ir_drop: float = 0.05       # V
    max_droop: float = 0.25         # V
    min_width_nm: int = 1_200
    max_width_nm: int = 20_000

    def describe(self) -> dict:
        return {
            "cell_avg_a": self.cell_avg_a,
            "peak_ratio": self.peak_ratio,
            "max_ir_drop": self.max_ir_drop,
            "max_droop": self.max_droop,
            "min_width_nm": self.min_width_nm,
            "max_width_nm": self.max_width_nm,
        }


@dataclass
class MacroSignoff:
    """One signed-off mesh: the grid, its metrics, and the verdict."""

    mesh: MeshResult
    grid: PowerGrid
    metal_area: int
    worst_ir_drop: float
    worst_droop: float
    em_violations: list[str]
    feasible: bool
    evaluations: int = 1

    def summary(self) -> dict:
        return {
            "mesh": self.mesh.spec.describe(),
            "metal_area": self.metal_area,
            "worst_ir_drop": float(self.worst_ir_drop),
            "worst_droop": float(self.worst_droop),
            "em_violations": len(self.em_violations),
            "feasible": self.feasible,
            "evaluations": self.evaluations,
        }


def _attach_loads(macro: TiledMacro, mesh: MeshResult,
                  spec: SignoffSpec) -> tuple[dict, dict, list[int]]:
    """Map unit-cell supply taps onto mesh nodes.

    Each tap crossing draws ``units x cell_avg`` at the nearest
    horizontal-plane node; the analog victim is the loaded node farthest
    from the pads (worst-case droop observer).
    """
    loads: dict[int, float] = {}
    peaks: dict[int, float] = {}
    for (i, j), units in sorted(macro.taps.items()):
        node = mesh.node_at("h", i, j)
        if node is None:
            node = mesh.nearest_node("h", i, j)
        loads[node] = loads.get(node, 0.0) + units * spec.cell_avg_a
        peaks[node] = peaks.get(node, 0.0) \
            + units * spec.cell_avg_a * spec.peak_ratio
    pad_pos = [mesh.node_pos[p][1:] for p in mesh.pad_nodes]

    def pad_distance(node: int) -> int:
        _, i, j = mesh.node_pos[node]
        return min(abs(i - pi) + abs(j - pj) for pi, pj in pad_pos)

    victim = max(sorted(loads), key=pad_distance)
    return loads, peaks, [victim]


def signoff_mesh(macro: TiledMacro, mesh: MeshResult,
                 spec: SignoffSpec | None = None) -> MacroSignoff:
    """Verify one routed mesh against all three constraint families.

    Counts ``macrogen.signoffs`` / ``macrogen.em_violations`` on the
    active tracer.
    """
    spec = spec or SignoffSpec()
    loads, peaks, analog = _attach_loads(macro, mesh, spec)
    grid = mesh.build_power_grid(loads, peaks, analog)
    ir = grid.worst_ir_drop()
    droop = grid.transient_droop(analog[0])
    em = grid.em_violations()
    feasible = (ir <= spec.max_ir_drop and droop <= spec.max_droop
                and not em and mesh.blockage_violations == 0)
    _count("macrogen.signoffs")
    if em:
        _count("macrogen.em_violations", len(em))
    return MacroSignoff(mesh, grid, mesh.metal_area(), ir, droop, em,
                        feasible)


def _evaluate(macro: TiledMacro, mesh_spec: MeshSpec,
              spec: SignoffSpec) -> MacroSignoff:
    return signoff_mesh(macro, route_mesh(macro, mesh_spec), spec)


def uniform_mesh(macro: TiledMacro, spec: SignoffSpec | None = None,
                 ) -> MacroSignoff:
    """Reference mesh: every strap corridor railed, one width for all.

    Scans widths geometrically from ``min_width_nm`` and returns the
    first feasible signoff (or the widest attempt, marked infeasible) —
    the 'before' picture the density optimizer has to beat.
    """
    spec = spec or SignoffSpec()
    h_all = len(macro.blockages.free_h_tracks)
    v_all = len(macro.blockages.free_v_tracks)
    width = spec.min_width_nm
    attempts = 0
    last = None
    while width <= spec.max_width_nm:
        mesh_spec = MeshSpec(h_all, v_all, width, width)
        last = _evaluate(macro, mesh_spec, spec)
        attempts += 1
        if last.feasible:
            break
        width = int(math.ceil(width * 1.3))
    last.evaluations = attempts
    return last


def optimize_mesh(macro: TiledMacro, spec: SignoffSpec | None = None,
                  seed: int = 1,
                  schedule: AnnealSchedule | None = None) -> MacroSignoff:
    """Minimize rail metal area over mesh density, subject to signoff.

    Anneals the four :class:`MeshSpec` knobs (log-scale, rails rounded
    to integers), then repairs any residual violation by widening /
    densifying, then greedily shrinks widths while feasibility holds —
    the same anneal/repair/shrink shape as the rail synthesizer.
    """
    spec = spec or SignoffSpec()
    schedule = schedule or AnnealSchedule(moves_per_temperature=24,
                                          cooling=0.85,
                                          max_evaluations=400)
    h_max = len(macro.blockages.free_h_tracks)
    v_max = len(macro.blockages.free_v_tracks)
    space = ContinuousSpace(
        ["h_rails", "v_rails", "h_width_nm", "v_width_nm"],
        np.array([2.0, 2.0, float(spec.min_width_nm),
                  float(spec.min_width_nm)]),
        np.array([float(h_max), float(v_max), float(spec.max_width_nm),
                  float(spec.max_width_nm)]),
        log_scale=True)
    evaluations = [0]
    area_norm = ((macro.width_nm + macro.height_nm)
                 * (h_max + v_max) * spec.min_width_nm)

    def to_mesh_spec(point: dict[str, float]) -> MeshSpec:
        return MeshSpec(int(round(point["h_rails"])),
                        int(round(point["v_rails"])),
                        int(round(point["h_width_nm"])),
                        int(round(point["v_width_nm"])))

    def cost(point: dict[str, float]) -> float:
        evaluations[0] += 1
        try:
            result = _evaluate(macro, to_mesh_spec(point), spec)
        except MeshRoutingError:
            return float("inf")
        value = result.metal_area / area_norm
        if result.worst_ir_drop > spec.max_ir_drop:
            value += 20.0 * (result.worst_ir_drop / spec.max_ir_drop - 1.0)
        if result.worst_droop > spec.max_droop:
            value += 20.0 * (result.worst_droop / spec.max_droop - 1.0)
        if result.em_violations:
            value += 30.0 * len(result.em_violations)
        return value

    x0 = np.array([float(h_max), float(v_max),
                   float(spec.max_width_nm) * 0.25,
                   float(spec.max_width_nm) * 0.25])
    anneal = anneal_continuous(cost, space, schedule=schedule, seed=seed,
                               x0=x0)
    best = to_mesh_spec(space.to_dict(anneal.best_state))

    # Repair: widen (and densify on droop) until feasible.
    current = _evaluate(macro, best, spec)
    evaluations[0] += 1
    for _ in range(12):
        if current.feasible:
            break
        h_rails, v_rails = best.h_rails, best.v_rails
        h_w, v_w = best.h_width_nm, best.v_width_nm
        if current.em_violations or \
                current.worst_ir_drop > spec.max_ir_drop:
            h_w = min(int(h_w * 1.4), spec.max_width_nm)
            v_w = min(int(v_w * 1.4), spec.max_width_nm)
        if current.worst_droop > spec.max_droop:
            h_rails = min(h_rails + 1, h_max)
            v_rails = min(v_rails + 1, v_max)
            h_w = min(int(h_w * 1.2), spec.max_width_nm)
            v_w = min(int(v_w * 1.2), spec.max_width_nm)
        trial = MeshSpec(h_rails, v_rails, h_w, v_w)
        if trial == best:
            break
        best = trial
        current = _evaluate(macro, best, spec)
        evaluations[0] += 1

    # Shrink: greedily narrow each width while signoff holds.
    if current.feasible:
        changed = True
        while changed:
            changed = False
            for knob in ("h_width_nm", "v_width_nm"):
                params = best.describe()
                narrower = max(int(params[knob] * 0.8), spec.min_width_nm)
                if narrower >= params[knob]:
                    continue
                params[knob] = narrower
                trial_spec = MeshSpec(**params)
                trial = _evaluate(macro, trial_spec, spec)
                evaluations[0] += 1
                if trial.feasible:
                    best, current, changed = trial_spec, trial, True

    current.evaluations = evaluations[0]
    return current


def macro_flow(spec: MacroSpec, mesh_spec: MeshSpec | None = None,
               signoff_spec: SignoffSpec | None = None,
               optimize: bool = False, seed: int = 1,
               tracer=None) -> dict:
    """End-to-end traced macro flow: tile -> route -> signoff.

    With ``optimize=True`` the mesh density is annealed instead of taken
    from ``mesh_spec``.  Emits a ``macro_flow`` root span with
    ``tile`` / ``route`` / ``signoff`` (or ``optimize``) children and
    returns a flat summary dict (the serve workload's result shape).
    """
    tracer = tracer if tracer is not None else current_tracer()
    signoff_spec = signoff_spec or SignoffSpec()
    with span_if(tracer, "macro_flow"):
        with span_if(tracer, "tile"):
            macro = tile_macro(spec)
        if optimize:
            with span_if(tracer, "optimize"):
                result = optimize_mesh(macro, signoff_spec, seed=seed)
        else:
            mesh_spec = mesh_spec or MeshSpec(
                max(2, len(macro.blockages.free_h_tracks) - 1),
                max(2, len(macro.blockages.free_v_tracks) - 1),
                4_000, 4_000)
            with span_if(tracer, "route"):
                mesh = route_mesh(macro, mesh_spec)
            with span_if(tracer, "signoff"):
                result = signoff_mesh(macro, mesh, signoff_spec)
    out = result.summary()
    out["macro"] = spec.describe()
    out["rails"] = len(result.mesh.rails)
    out["vias"] = result.mesh.vias
    out["blockage_violations"] = result.mesh.blockage_violations
    return out
