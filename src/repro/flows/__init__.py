"""End-to-end design flows: closed-loop cell design and chip assembly."""

from repro.flows.cell_flow import (
    CellDesign,
    CellFlowError,
    design_ota_cell,
    layout_cell,
)
from repro.flows.chip_flow import ChipFlowError, ChipPlan, assemble_chip

__all__ = [
    "CellDesign",
    "CellFlowError",
    "ChipFlowError",
    "ChipPlan",
    "assemble_chip",
    "design_ota_cell",
    "layout_cell",
]
