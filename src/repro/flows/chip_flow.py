"""Full mixed-signal chip assembly: floorplan → route → power (§3.2).

One call runs the complete backend system flow on a block-level design:

1. WRIGHT floorplanning with substrate-noise awareness;
2. WREN global routing with SNR-driven noise avoidance;
3. SNR constraint mapping: chip-level noise-rejection limits become
   per-segment coupling budgets for the detailed routers;
4. RAIL power-grid synthesis meeting dc / EM / transient constraints.

The result object carries every intermediate artifact plus a printable
report, so the benchmarks and examples share one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.msystem.blocks import Block, SignalNet
from repro.msystem.channels import (
    DetailedChannelReport,
    assign_nets_to_channels,
    define_channels,
    route_all_channels,
)
from repro.msystem.floorplan import FloorplanResult, WrightFloorplanner
from repro.msystem.global_router import GlobalRoutingResult, WrenGlobalRouter
from repro.msystem.noise_constraints import (
    SegmentBudget,
    SnrBudget,
    map_budget_to_segments,
)
from repro.msystem.powergrid import RailResult, RailSpec, synthesize_rail
from repro.engine.config import EngineConfig, resolve_flow_engine
from repro.engine.core import EvaluationEngine
from repro.engine.faults import RetryPolicy
from repro.engine.jobs import JobGraph
from repro.engine.trace import finish_run, span_if
from repro.opt.anneal import AnnealSchedule

# Assumed ground capacitance per mm of chip-level wire for SNR budgeting.
CAP_PER_MM = 0.2e-12


class ChipFlowError(RuntimeError):
    pass


@dataclass
class ChipPlan:
    floorplan: FloorplanResult
    routing: GlobalRoutingResult
    snr_budgets: dict[str, SnrBudget]
    segment_budgets: dict[str, list[SegmentBudget]]
    power: RailResult
    channels: DetailedChannelReport | None = None
    log: list[str] = field(default_factory=list)
    telemetry: dict | None = None  # engine report, when a flow engine ran
    manifest: dict | None = None   # run manifest, when the engine is traced

    def report(self) -> str:
        lines = [
            f"chip: {self.floorplan.width / 1e6:.2f} x "
            f"{self.floorplan.height / 1e6:.2f} mm, "
            f"area {self.floorplan.area / 1e12:.2f} mm^2",
            f"substrate noise figure: {self.floorplan.noise:.3f}",
            f"global routes: {len(self.routing.routes)} "
            f"(failed: {len(self.routing.failed)}), total "
            f"{self.routing.total_length / 1e6:.1f} mm, exposure "
            f"{self.routing.total_exposure / 1e6:.2f} mm",
            f"power grid: IR {self.power.worst_ir_drop * 1e3:.0f} mV, "
            f"droop {self.power.worst_droop * 1e3:.0f} mV, "
            f"EM violations {len(self.power.em_violations)}, "
            f"metal {self.power.metal_area / 1e12:.3f} mm^2, "
            f"feasible: {self.power.feasible}",
        ]
        if self.channels is not None:
            lines.append(
                f"detailed channels: {len(self.channels.results)} routed "
                f"({self.channels.total_tracks} tracks, "
                f"{self.channels.total_shields} shields, "
                f"{len(self.channels.unroutable)} unroutable)")
        for net, budgets in self.segment_budgets.items():
            total = sum(b.coupling_bound for b in budgets)
            lines.append(
                f"  SNR map {net}: {len(budgets)} segments, total budget "
                f"{total * 1e15:.2f} fF")
        return "\n".join(lines)


def _floorplan_stage(blocks, nets, noise_aware, seed, schedule):
    floorplanner = WrightFloorplanner(
        blocks, nets,
        noise_weight=1.0 if noise_aware else 0.0,
        seed=seed)
    return floorplanner.run(schedule)


def _route_stage(floorplan, nets, noise_aware):
    # Tight floorplans can defeat a given tile resolution: retry with
    # finer grids before giving up.
    routing = None
    for tiles in (48, 64, 96):
        router = WrenGlobalRouter(floorplan, tiles_x=tiles, tiles_y=tiles,
                                  noise_aware=noise_aware)
        routing = router.route(nets)
        if not routing.failed:
            break
    if routing is None or routing.failed:
        raise ChipFlowError(f"unroutable chip nets: {routing.failed}")
    return routing


def _snr_stage(routing, nets):
    snr_budgets: dict[str, SnrBudget] = {}
    segment_budgets: dict[str, list[SegmentBudget]] = {}
    for net in nets:
        if net.snr_limit_db is None:
            continue
        route = routing.routes.get(net.name)
        if route is None:
            continue
        ground_cap = CAP_PER_MM * route.length_nm / 1e6
        budget = SnrBudget.for_net(net, ground_cap)
        snr_budgets[net.name] = budget
        segment_budgets[net.name] = map_budget_to_segments(
            budget, route.segments(routing.tile_nm))
    return snr_budgets, segment_budgets


def assemble_chip(blocks: list[Block], nets: list[SignalNet],
                  rail_spec: RailSpec | None = None,
                  seed: int = 1,
                  floorplan_schedule: AnnealSchedule | None = None,
                  noise_aware: bool = True,
                  engine: EvaluationEngine | None = None,
                  retry_policy: RetryPolicy | None = None,
                  config: EngineConfig | None = None) -> ChipPlan:
    """Run the full system-assembly flow.

    The stages (floorplan → route → SNR mapping → channels → power) are
    declared as a :class:`repro.engine.JobGraph`.  Pass
    ``config=EngineConfig(...)`` to run through a freshly built engine —
    with ``trace=True`` the stages run under a ``chip_flow`` span and the
    returned plan carries the run ``manifest`` (written to
    ``config.trace_dir`` when set).  The legacy ``engine=`` /
    ``retry_policy=`` kwargs still work (deprecated): per-stage wall
    times and counters land in the plan's ``telemetry``, and a retry
    policy grants each stage extra attempts on transient errors.
    """
    engine, retry_policy, owned = resolve_flow_engine(
        engine, retry_policy, config, "assemble_chip")
    tracer = getattr(engine, "tracer", None) if engine is not None else None
    log: list[str] = []
    schedule = floorplan_schedule or AnnealSchedule(
        moves_per_temperature=120, cooling=0.88, max_evaluations=10000)

    graph = JobGraph()
    graph.add("floorplan",
              lambda r: _floorplan_stage(blocks, nets, noise_aware, seed,
                                         schedule))
    graph.add("route", lambda r: _route_stage(r["floorplan"], nets,
                                              noise_aware),
              deps=("floorplan",))
    graph.add("snr", lambda r: _snr_stage(r["route"], nets),
              deps=("route",))
    # Detailed channel routing: corridors between facing blocks, with
    # shields between incompatible neighbours.
    graph.add("channels",
              lambda r: route_all_channels(
                  assign_nets_to_channels(define_channels(r["floorplan"]),
                                          r["route"], nets),
                  insert_shields=True),
              deps=("floorplan", "route"))
    graph.add("power",
              lambda r: synthesize_rail(r["floorplan"], rail_spec,
                                        seed=seed),
              deps=("floorplan",))
    status = "ok"
    try:
        with span_if(tracer, "chip_flow"):
            stages = graph.run(engine, retry_policy=retry_policy)
    except BaseException:
        status = "error"
        raise
    finally:
        manifest = None
        if engine is not None:
            manifest = finish_run("chip_flow", engine, seed=seed,
                                  config=config, status=status)
            if owned and status != "ok":
                engine.close()

    floorplan = stages["floorplan"]
    log.append(f"floorplan: area {floorplan.area / 1e12:.2f} mm^2, "
               f"noise {floorplan.noise:.3f}")
    routing = stages["route"]
    log.append(f"routing: {routing.total_length / 1e6:.1f} mm, exposure "
               f"{routing.total_exposure / 1e6:.2f} mm")
    snr_budgets, segment_budgets = stages["snr"]
    log.append(f"SNR budgets mapped for {len(snr_budgets)} nets")
    channels = stages["channels"]
    log.append(f"channels: {channels.total_tracks} tracks, "
               f"{channels.total_shields} shields")
    power = stages["power"]
    log.append(f"power grid feasible: {power.feasible}")
    telemetry = None
    if engine is not None:
        summary = engine.failure_summary()
        if summary:
            log.append(summary)
        telemetry = engine.report()
        if owned:
            engine.close()
    return ChipPlan(floorplan, routing, snr_budgets, segment_budgets,
                    power, channels, log,
                    telemetry=telemetry, manifest=manifest)
