"""Closed-loop analog cell design: synthesis → layout → extract → verify.

"An open problem is 'closing the loop' from cell synthesis to cell
layout, so that layouts which do not meet specifications can, if
necessary, cause actual circuit design changes (via circuit resynthesis)"
(§3.1, [51]).  This flow implements exactly that loop:

1. size the cell (design plan or equation-based optimization);
2. generate device layouts, extract symmetry constraints, place (KOAN),
   route (ANAGRAM), compact;
3. extract parasitics, back-annotate, verify with the simulator;
4. if the extracted circuit misses a spec, *tighten the synthesis
   targets* by the observed degradation and resynthesize — the layout
   concern reflected back into synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ac import ac_analysis, bode_metrics, logspace_frequencies
from repro.analysis.dcop import dc_operating_point
from repro.circuits.library import five_transistor_ota
from repro.circuits.netlist import Circuit
from repro.core.specs import Spec, SpecKind, SpecSet
from repro.layout.compaction import compact_placement
from repro.layout.constraints import extract_constraints
from repro.layout.devicegen import generate_device
from repro.layout.parasitics import annotate_circuit, extract_parasitics
from repro.layout.placer import KoanPlacer
from repro.layout.router import (
    SENSITIVE,
    RoutingRequest,
    route_placement,
    routed_cell,
)
from repro.engine.config import EngineConfig, resolve_flow_engine
from repro.engine.core import EvaluationEngine
from repro.engine.faults import RetryPolicy
from repro.engine.jobs import JobGraph
from repro.engine.trace import finish_run, span_if
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.plan_library import default_plan_library

PLACE_SCHEDULE = AnnealSchedule(moves_per_temperature=120, cooling=0.88,
                                max_evaluations=15000, stop_after_stale=8)


class CellFlowError(RuntimeError):
    pass


@dataclass
class CellDesign:
    """Everything the flow produced for one cell."""

    topology: str
    sizes: dict
    schematic: Circuit
    placement: object
    routing: object
    layout_cell: object
    extracted_circuit: Circuit
    pre_layout: dict
    post_layout: dict
    iterations: int
    area_um2: float
    log: list[str] = field(default_factory=list)
    telemetry: dict | None = None  # engine report, when a flow engine ran
    manifest: dict | None = None   # run manifest, when the engine is traced


def _measure(circuit: Circuit, output: str = "out") -> dict:
    testbench = circuit.copy()
    testbench.vsource("tb_vip", "inp", "0", dc=1.5, ac=1.0)
    testbench.vsource("tb_vin", "inn", "0", dc=1.5)
    op = dc_operating_point(testbench)
    metrics = bode_metrics(
        ac_analysis(testbench, logspace_frequencies(10, 1e9, 5), op=op),
        output)
    performance = {
        "gain": metrics.dc_gain,
        "gain_db": metrics.dc_gain_db,
        "gbw": metrics.unity_gain_freq,
        "phase_margin": metrics.phase_margin_deg,
        "power": op.power(("vdd_src",), testbench),
    }
    # Slew rate = tail current into the load capacitance (OTA-shaped
    # cells: tail device m5, load capacitor cl).
    try:
        c_load = circuit.device("cl").value
        performance["slew_rate"] = abs(op.mos["m5"].ids) / c_load
    except (KeyError, AttributeError):
        pass
    return performance


def layout_cell(circuit: Circuit, seed: int = 1,
                sensitive_nets: tuple[str, ...] = ("inp", "inn")):
    """Place, route and compact one cell; returns the physical results."""
    constraints = extract_constraints(circuit)
    layouts = []
    for dev in circuit.devices:
        try:
            layouts.append(generate_device(dev))
        except TypeError:
            continue
    if not layouts:
        raise CellFlowError("no layoutable devices in circuit")
    placer = KoanPlacer(layouts, constraints, seed=seed)
    placement_result = placer.run(schedule=PLACE_SCHEDULE)
    compact_placement(placement_result.placement, constraints)
    nets: dict[str, list] = {}
    for name, obj in placement_result.placement.objects.items():
        lay = placer.layouts[name]
        for port, net in lay.port_nets.items():
            if port in lay.cell.ports:
                x, y = obj.port_position(port)
                nets.setdefault(net, []).append(
                    (x, y, lay.cell.ports[port].layer))
    requests = [
        RoutingRequest(net, pins,
                       SENSITIVE if net in sensitive_nets else "neutral")
        for net, pins in nets.items() if len(pins) > 1
    ]
    routing, router = route_placement(placement_result.placement, requests,
                                      constraints.net_pairs)
    if routing.failed:
        raise CellFlowError(f"unroutable nets: {routing.failed}")
    extraction = extract_parasitics(routing, router)
    cell = routed_cell(placement_result.placement, routing)
    return placement_result, routing, extraction, cell


def _iteration_graph(plan, targets: dict, seed: int) -> JobGraph:
    """One resynthesis iteration as an explicit stage graph.

    size → schematic → (measure_pre, layout) → extract → verify; each
    stage is timed under ``stage.<name>`` when an engine is supplied.
    """
    graph = JobGraph()
    graph.add("size", lambda r: plan.execute(targets))
    graph.add("schematic",
              lambda r: five_transistor_ota(dict(r["size"].sizes)),
              deps=("size",))
    graph.add("measure_pre", lambda r: _measure(r["schematic"]),
              deps=("schematic",))
    graph.add("layout", lambda r: layout_cell(r["schematic"], seed=seed),
              deps=("schematic",))
    graph.add("extract",
              lambda r: annotate_circuit(r["schematic"], r["layout"][2]),
              deps=("schematic", "layout"))
    graph.add("verify", lambda r: _measure(r["extract"]),
              deps=("extract",))
    return graph


def design_ota_cell(specs: SpecSet, seed: int = 1,
                    max_iterations: int = 3,
                    engine: EvaluationEngine | None = None,
                    retry_policy: RetryPolicy | None = None,
                    config: EngineConfig | None = None) -> CellDesign:
    """The full closed loop for the 5-transistor OTA.

    Sizing uses the design plan (fast, deterministic); re-iterations
    tighten the GBW target by the layout-induced degradation.  Each
    iteration runs as a :class:`repro.engine.JobGraph` (size → layout →
    extract → verify).

    Pass ``config=EngineConfig(...)`` to run through a freshly built
    engine — with ``trace=True`` the whole flow runs under a ``cell_flow``
    span (one ``iteration_<n>`` child per resynthesis pass, one
    grandchild per stage) and the returned design carries the run
    ``manifest``; with ``trace_dir`` set, ``manifest.json`` +
    ``trace.jsonl`` are written there.  The legacy ``engine=`` /
    ``retry_policy=`` kwargs still work (deprecated): per-stage wall
    times and counters land in the design's ``telemetry``, and a retry
    policy grants each stage extra attempts on transient failures.
    """
    engine, retry_policy, owned = resolve_flow_engine(
        engine, retry_policy, config, "design_ota_cell")
    tracer = getattr(engine, "tracer", None) if engine is not None else None
    status = "ok"
    try:
        with span_if(tracer, "cell_flow"):
            design = _run_cell_loop(specs, seed, max_iterations, engine,
                                    retry_policy, tracer)
    except BaseException:
        status = "error"
        raise
    finally:
        if engine is not None:
            manifest = finish_run("cell_flow", engine, seed=seed,
                                  config=config, status=status)
            if status == "ok":
                design.manifest = manifest
                design.telemetry = engine.report()
            if owned:
                engine.close()
    return design


def _run_cell_loop(specs: SpecSet, seed: int, max_iterations: int,
                   engine: EvaluationEngine | None,
                   retry_policy: RetryPolicy | None, tracer) -> CellDesign:
    plan = default_plan_library().get("five_transistor_ota")
    gbw_spec = _required(specs, "gbw")
    gain_spec = _required(specs, "gain", default=50.0)
    log: list[str] = []
    gbw_target = gbw_spec
    last_failure = "no attempt"
    for iteration in range(1, max_iterations + 1):
        # 15% margin on the slew target: the plan's ideal mirror ratio
        # overestimates the tail current the simulator will deliver.
        from repro.synthesis.plans import PlanError
        graph = _iteration_graph(plan, {
            "gbw": gbw_target,
            "slew_rate": 1.15 * _required(specs, "slew_rate",
                                          default=gbw_spec),
            "c_load": 2e-12,
            "gain": gain_spec,
            "vdd": 3.3,
        }, seed)
        try:
            with span_if(tracer, f"iteration_{iteration}"):
                stages = graph.run(engine, retry_policy=retry_policy)
        except PlanError as exc:
            raise CellFlowError(f"sizing infeasible: {exc}") from exc
        sizes = stages["size"].sizes
        circuit = stages["schematic"]
        pre = stages["measure_pre"]
        log.append(f"iter {iteration}: sized for gbw={gbw_target:.4g}, "
                   f"pre-layout gbw={pre['gbw']:.4g}")
        placement, routing, extraction, cell = stages["layout"]
        extracted = stages["extract"]
        post = stages["verify"]
        log.append(f"iter {iteration}: post-layout gbw={post['gbw']:.4g}")
        if specs.all_satisfied(post):
            box = cell.bbox()
            if engine is not None:
                summary = engine.failure_summary()
                if summary:
                    log.append(summary)
            return CellDesign(
                topology="five_transistor_ota", sizes=sizes,
                schematic=circuit, placement=placement, routing=routing,
                layout_cell=cell, extracted_circuit=extracted,
                pre_layout=pre, post_layout=post, iterations=iteration,
                area_um2=box.area / 1e6, log=log)
        # Closing the loop: scale the synthesis target by the observed
        # shortfall (model error + layout degradation) plus margin, then
        # resynthesize.
        if post.get("gbw", 0) > 0:
            shortfall = gbw_spec / post["gbw"]
            gbw_target = gbw_target * max(shortfall, 1.0) * 1.08
            last_failure = (f"post-layout specs not met "
                            f"(gbw {post['gbw']:.4g})")
            log.append(f"iter {iteration}: resynthesis with gbw target "
                       f"{gbw_target:.4g}")
        else:
            last_failure = "post-layout evaluation failed"
            break
    raise CellFlowError(
        f"cell flow failed after {max_iterations} iterations "
        f"({last_failure})")


def _required(specs: SpecSet, name: str,
              default: float | None = None) -> float:
    for s in specs.constraints:
        if s.name == name and s.kind is SpecKind.MIN:
            return s.value
    if default is None:
        raise CellFlowError(f"specs must include a minimum for {name!r}")
    return default
