"""Parallel, cache-aware evaluation engine shared by all synthesis loops.

The frontends the paper surveys are evaluation-bound: simulation-in-the-
loop sizing, plan execution, and closed-loop resynthesis all spend their
time re-running the circuit simulator.  This package centralizes that
work behind one engine — pluggable executors (serial / process pool), a
content-addressed result cache, per-stage telemetry, and a task-graph
runner for the flow pipelines.
"""

from repro.engine.cache import CacheStats, EvalCache, canonical_key
from repro.engine.core import EvaluationEngine, KeyedEngine
from repro.engine.executor import Executor, ParallelExecutor, SerialExecutor
from repro.engine.faults import (
    EvalFailure,
    EvalTimeoutError,
    FaultInjector,
    InjectedFunction,
    RetryPolicy,
    WorkerCrashError,
    is_failure,
    point_token,
)
from repro.engine.jobs import Job, JobGraph, JobGraphError
from repro.engine.telemetry import Telemetry, TimerStat

__all__ = [
    "CacheStats",
    "EvalCache",
    "EvalFailure",
    "EvalTimeoutError",
    "EvaluationEngine",
    "Executor",
    "FaultInjector",
    "InjectedFunction",
    "Job",
    "JobGraph",
    "JobGraphError",
    "KeyedEngine",
    "ParallelExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "Telemetry",
    "TimerStat",
    "WorkerCrashError",
    "canonical_key",
    "is_failure",
    "point_token",
]
