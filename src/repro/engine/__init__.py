"""Parallel, cache-aware evaluation engine shared by all synthesis loops.

The frontends the paper surveys are evaluation-bound: simulation-in-the-
loop sizing, plan execution, and closed-loop resynthesis all spend their
time re-running the circuit simulator.  This package centralizes that
work behind one engine — pluggable executors (serial / process pool), a
content-addressed result cache, per-stage telemetry, a task-graph runner
for the flow pipelines, and a structured tracing layer (hierarchical
spans, JSONL event logs, per-run manifests) with versioned report and
manifest schemas.
"""

from repro.engine.cache import CacheStats, EvalCache, canonical_key
from repro.engine.config import EngineConfig, ServeConfig, SurrogateConfig
from repro.engine.core import BATCH_FALLBACK, EvaluationEngine, KeyedEngine
from repro.engine.executor import (
    BatchStats,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.engine.faults import (
    EvalFailure,
    EvalTimeoutError,
    FaultInjector,
    InjectedFunction,
    RetryPolicy,
    WorkerCrashError,
    is_failure,
    point_token,
)
from repro.engine.jobs import Job, JobGraph, JobGraphError
from repro.engine.schema import (
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    SchemaError,
    check_report,
    kernel_rollup,
    serve_rollup,
    solver_rollup,
    surrogate_rollup,
    validate_manifest,
)
from repro.engine.telemetry import Telemetry, TimerStat
from repro.engine.trace import (
    Span,
    Tracer,
    build_manifest,
    current_tracer,
    finish_run,
    manifest_digest,
    span_if,
    strip_volatile,
    write_manifest,
)

__all__ = [
    "BATCH_FALLBACK",
    "BatchStats",
    "CacheStats",
    "EngineConfig",
    "EvalCache",
    "EvalFailure",
    "EvalTimeoutError",
    "EvaluationEngine",
    "Executor",
    "FaultInjector",
    "InjectedFunction",
    "Job",
    "JobGraph",
    "JobGraphError",
    "KeyedEngine",
    "MANIFEST_SCHEMA_VERSION",
    "ParallelExecutor",
    "REPORT_SCHEMA_VERSION",
    "RetryPolicy",
    "SchemaError",
    "SerialExecutor",
    "ServeConfig",
    "Span",
    "SurrogateConfig",
    "Telemetry",
    "ThreadExecutor",
    "TimerStat",
    "Tracer",
    "WorkerCrashError",
    "build_manifest",
    "canonical_key",
    "check_report",
    "current_tracer",
    "finish_run",
    "is_failure",
    "kernel_rollup",
    "manifest_digest",
    "point_token",
    "serve_rollup",
    "solver_rollup",
    "span_if",
    "strip_volatile",
    "surrogate_rollup",
    "validate_manifest",
    "write_manifest",
]
