"""Content-addressed memoization cache for circuit evaluations.

Simulation-in-the-loop synthesis (ASTRX/OBLX, FRIDGE, the §3.1 resynthesis
loop) re-simulates the same sized netlist far more often than one would
expect: annealers revisit accepted states, genetic elites survive across
generations, and a resynthesis iteration re-measures circuits the previous
iteration already evaluated.  The cache removes all of that redundant work
by keying each result on a canonical hash of *what the simulator would
actually see*: the serialized netlist (device sizes included), the analysis
kind, and the analysis parameters.  Two circuits that serialize identically
are the same evaluation, no matter which loop asked.

The cache is an in-memory LRU with hit/miss/eviction statistics and an
optional on-disk layer (one pickle per key) so results survive across
processes and sessions.  The disk layer is multi-process safe: publishes
go through :func:`publish_pickle` (a process-unique temp file followed by
an atomic ``os.replace``), so any number of writers — shard workers, pool
workers, concurrent sessions — can share one directory, readers never see
a partial file, and two writers racing on the same key both leave a
complete value behind (last rename wins; the values are content-addressed,
so both renames carry the same bytes).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

_MISS = object()


def publish_pickle(path: Path, value: Any) -> None:
    """Atomically publish ``value`` as a pickle at ``path``.

    The write-then-rename protocol of the shared artifact store: the
    pickle is staged in a temp file unique to this process *and* this
    publish (pid + a per-call counter), then renamed into place with
    ``os.replace``.  A reader therefore never observes a partial file,
    and concurrent writers — even of the same key, from different
    processes — cannot interleave bytes in one staging file the way a
    fixed ``<key>.tmp`` would let them.
    """
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{_publish_counter()}.tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


_PUBLISH_SEQ = 0


def _publish_counter() -> int:
    global _PUBLISH_SEQ
    _PUBLISH_SEQ += 1
    return _PUBLISH_SEQ


def _is_failure(value: Any) -> bool:
    # Late import: faults.py imports canonical_key from this module.
    from repro.engine.faults import is_failure
    return is_failure(value)


def _canonical_bytes(part: Any) -> bytes:
    """Stable byte encoding of one key part.

    Circuits serialize through the SPICE writer (the canonical statement of
    netlist + sizes + models); mappings sort their keys; floats use ``repr``
    so the encoding is exact, not rounded.
    """
    # Late import: circuits must not depend on the engine package.
    from repro.circuits.netlist import Circuit

    if isinstance(part, Circuit):
        from repro.circuits.writer import write_netlist
        # Fixed title: the key must cover the electrical content only.
        # (A netlist re-parsed from the writer loses its original name —
        # the title line is a comment — and must still hit the cache.)
        return write_netlist(part, title="*").encode()
    if isinstance(part, bytes):
        return part
    if isinstance(part, str):
        return part.encode()
    if isinstance(part, bool) or part is None:
        return repr(part).encode()
    if isinstance(part, float):
        # float() collapses numpy float subclasses onto one exact repr.
        return repr(float(part)).encode()
    if isinstance(part, int):
        return repr(int(part)).encode()
    if isinstance(part, dict):
        items = sorted(part.items(), key=lambda kv: str(kv[0]))
        return b"{" + b",".join(
            _canonical_bytes(k) + b":" + _canonical_bytes(v)
            for k, v in items) + b"}"
    if isinstance(part, (list, tuple)):
        return b"[" + b",".join(_canonical_bytes(p) for p in part) + b"]"
    if hasattr(part, "tolist"):  # numpy scalars and arrays
        return _canonical_bytes(part.tolist())
    raise TypeError(f"cannot canonicalize {type(part).__name__} for cache key")


def canonical_key(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(_canonical_bytes(part))
        h.update(b"\x1f")  # separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    failure_rejects: int = 0  # EvalFailure values refused by put()

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "disk_hits": self.disk_hits,
                "failure_rejects": self.failure_rejects,
                "hit_rate": self.hit_rate}


class EvalCache:
    """LRU evaluation cache with optional on-disk persistence.

    Values are returned exactly as stored (no copying), so a hit is
    bit-identical to the original computation.  Callers must therefore
    treat cached values as immutable — every producer in this toolkit
    returns fresh performance dicts, so this is the natural contract.
    """

    def __init__(self, max_entries: int = 65536,
                 disk_dir: str | Path | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._store: OrderedDict[str, Any] = OrderedDict()
        self.stats = CacheStats()

    # -- core operations ----------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        value = self._store.get(key, _MISS)
        if value is not _MISS:
            self._store.move_to_end(key)
            self.stats.hits += 1
            return value
        value = self._disk_get(key)
        if value is not _MISS:
            if _is_failure(value):
                # A failure record in a stale disk layer is never served:
                # failed evaluations must always be recomputed.
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._insert(key, value, write_disk=False)
            return value
        self.stats.misses += 1
        return default

    def __contains__(self, key: str) -> bool:
        return key in self._store or self._disk_path(key) is not None and \
            self._disk_path(key).exists()

    def put(self, key: str, value: Any) -> None:
        """Store a result.  :class:`EvalFailure` records are refused:
        caching a failure would make a transient error permanent for
        every future lookup of that netlist, so failures always
        re-evaluate."""
        if _is_failure(value):
            self.stats.failure_rejects += 1
            return
        self._insert(key, value, write_disk=True)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        value = self.get(key, _MISS)
        if value is not _MISS:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    # -- enumeration ---------------------------------------------------
    def items(self) -> list[tuple[str, Any]]:
        """Snapshot of the in-memory LRU layer, LRU-first.

        A plain copy of the ``(key, value)`` pairs: recency order and the
        hit/miss statistics are untouched, so enumerating the cache (for
        corpus harvesting or debugging) never perturbs what a subsequent
        run observes.  Values are the stored objects themselves — treat
        them as immutable, exactly as :meth:`get` callers must.

        Safe to call while other threads insert: if a concurrent writer
        resizes the store mid-copy (``RuntimeError: dictionary changed
        size during iteration``) the copy is simply retried — a snapshot
        is any consistent point-in-time view, not a frozen one.
        """
        for _ in range(16):
            try:
                return list(self._store.items())
            except RuntimeError:  # concurrent insert resized the dict
                continue
        # Writer churn outpaced 16 attempts: copy the keys first (atomic
        # under the GIL) and accept missing freshly-evicted entries.
        sentinel = object()
        pairs = [(k, self._store.get(k, sentinel)) for k in list(self._store)]
        return [(k, v) for k, v in pairs if v is not sentinel]

    def scan_disk(self) -> Iterator[tuple[str, Any]]:
        """Enumerate the on-disk layer, sorted by key.

        Yields every readable ``(key, value)`` pickle under ``disk_dir``
        without promoting anything into the LRU and without touching the
        statistics.  Unreadable/corrupt files and persisted failure
        records are skipped — the same values :meth:`get` would refuse
        to serve.  Yields nothing when there is no disk layer.

        Safe to run while other processes publish: staged temp files
        never match the ``*.pkl`` glob (they carry a leading dot and a
        ``.tmp`` suffix), a published file is complete by construction
        (:func:`publish_pickle` renames atomically), and a file that
        vanishes between the glob and the open is simply skipped.
        """
        if self.disk_dir is None:
            return
        for path in sorted(self.disk_dir.glob("*.pkl")):
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                continue
            if _is_failure(value):
                continue
            yield path.stem, value

    # -- internals -----------------------------------------------------
    def _insert(self, key: str, value: Any, write_disk: bool) -> None:
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.stats.evictions += 1
        if write_disk and self.disk_dir is not None:
            publish_pickle(self._disk_path(key), value)

    def _disk_path(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.pkl"

    def _disk_get(self, key: str) -> Any:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return _MISS
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return _MISS

    def report(self) -> dict:
        out = self.stats.as_dict()
        out["entries"] = len(self._store)
        out["max_entries"] = self.max_entries
        out["disk_dir"] = str(self.disk_dir) if self.disk_dir else None
        return out
