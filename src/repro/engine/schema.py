"""Versioned schemas for ``engine.report()`` and the run manifest.

The report and the manifest are machine-read surfaces: CI gates on them,
benchmarks harvest them, and future BENCH_*.json tooling will parse them.
Both therefore carry an explicit ``schema_version`` and this module is the
single place the contract lives:

* :data:`REPORT_SCHEMA_VERSION` / :data:`REQUIRED_REPORT_KEYS` — the shape
  of :meth:`repro.engine.EvaluationEngine.report`;
* :data:`MANIFEST_SCHEMA_VERSION` and ``run_manifest_schema.json`` (checked
  in next to this module) — the shape of the per-run manifest;
* :func:`validate` — a dependency-free validator for the JSON-Schema subset
  the checked-in schema uses (no third-party ``jsonschema`` in the image).

Bumping either version is a deliberate, reviewed act: change the constant,
the schema file and the consumers in one commit, or CI's drift gate fails.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

#: Version of the dict returned by ``EvaluationEngine.report()``.
#: v1 was the implicit pre-versioning shape (counters/timers/failures/
#: executor/cache); v2 adds ``schema_version`` and ``spans``; v3 adds
#: ``solver`` (rollup of the shared linear-solver layer's counters);
#: v4 adds ``serve`` (rollup of the serving layer's ``serve.*`` counters
#: and latency samples); v5 adds ``surrogate`` (rollup of the surrogate
#: screening layer's ``surrogate.*`` counters and fit/predict latency
#: samples); v6 adds ``kernel`` (rollup of the batched-evaluation
#: kernel's ``kernel.*`` counters and per-group latency samples); v7
#: adds ``serve.shards`` (per-shard outcome breakdown of a sharded
#: fleet — ``[]`` for a single unsharded broker) so merged fleet
#: reports carry the fleet-wide sums *and* who did what; v8 adds
#: ``topogen`` (rollup of the compositional topology-generation
#: funnel's ``topogen.*`` counters plus the interval selector's
#: unproven-pass count); v9 adds ``macro`` (rollup of the memory-macro
#: flow's ``macrogen.*`` counters plus the power grid's width-rejection
#: count).
REPORT_SCHEMA_VERSION = 9

#: Version of the per-run manifest written by traced flows.
#: v2 adds the ``solver_*`` rollups sourced from report["solver"];
#: v3 adds the ``serve_*`` rollups sourced from report["serve"];
#: v4 adds the ``surrogate_*`` rollups sourced from report["surrogate"];
#: v5 adds the ``kernel_*`` rollups sourced from report["kernel"];
#: v6 adds ``serve_shards`` (fleet width, 0 when unsharded) alongside
#: the report's v7 per-shard serve breakdown; v7 adds the ``topogen_*``
#: rollups sourced from report["topogen"]; v8 adds the ``macro_*``
#: rollups sourced from report["macro"].
MANIFEST_SCHEMA_VERSION = 8

#: Keys every ``report()`` dict must contain, at any version >= 2.
REQUIRED_REPORT_KEYS = (
    "schema_version",
    "counters",
    "timers",
    "failures",
    "executor",
    "cache",
    "spans",
    "solver",
    "serve",
    "surrogate",
    "kernel",
    "topogen",
    "macro",
)

#: Keys of the ``report["solver"]`` section (schema v3).
REQUIRED_SOLVER_KEYS = (
    "factorizations",
    "dense",
    "sparse",
    "solves",
    "cache_hits",
    "cache_misses",
    "hit_rate",
)


def solver_rollup(counters: dict) -> dict:
    """Fold the ``solver.*`` telemetry counters into the report section.

    All-zero (with ``hit_rate`` None) when a run never touched the
    linear-solver layer — the section is always present so consumers
    never need an existence check.
    """
    hits = int(counters.get("solver.cache_hits", 0))
    misses = int(counters.get("solver.cache_misses", 0))
    looked_up = hits + misses
    return {
        "factorizations": int(counters.get("solver.factorizations", 0)),
        "dense": int(counters.get("solver.factor_dense", 0)),
        "sparse": int(counters.get("solver.factor_sparse", 0)),
        "solves": int(counters.get("solver.solves", 0)),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": (hits / looked_up) if looked_up else None,
    }

#: Keys of the ``report["serve"]`` section (schema v4; ``shards`` v7).
REQUIRED_SERVE_KEYS = (
    "requests",
    "admitted",
    "rejected",
    "expired",
    "cancelled",
    "errored",
    "completed",
    "batches",
    "batched",
    "mean_batch_size",
    "batch_size_hist",
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "shards",
)

#: Keys of each entry in ``report["serve"]["shards"]`` (schema v7).
#: One entry per shard of a :class:`repro.serve.ShardRouter` fleet; the
#: outcome counters are router-observed (every settle crosses the
#: router), so they stay correct even when the shard itself crashed and
#: can no longer report.
REQUIRED_SHARD_KEYS = (
    "shard",
    "condemned",
    "restarts",
    "routed",
    "rerouted",
    "completed",
    "expired",
    "cancelled",
    "errored",
)


def _percentile(values: list, q: float) -> float | None:
    """Nearest-rank percentile of raw samples (no numpy on this path)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered))  # nearest-rank definition
    return ordered[min(max(rank, 1), len(ordered)) - 1]


def serve_rollup(counters: dict, latency_samples: list | None = None,
                 shards: list | None = None) -> dict:
    """Fold the ``serve.*`` counters (and latency samples) into the report.

    All-zero (percentiles/mean None) when a run never went through the
    serving layer — like ``solver``, the section is always present so
    consumers never need an existence check.  The batch-size histogram
    comes from the ``serve.batch_size.<n>`` counters the broker bumps
    per dispatched batch; latency percentiles are nearest-rank over the
    ``serve.latency_s`` telemetry samples (keys end in ``_s``: wall-clock
    values are volatile and stripped from structural digests).

    ``shards`` (schema v7) is the per-shard outcome breakdown a
    :class:`repro.serve.ShardRouter` supplies for its merged fleet
    report; a single unsharded broker's report carries ``[]``, so the
    key is always present and ``sum over shards == fleet total`` is a
    checkable identity whenever the list is non-empty.
    """
    samples = list(latency_samples or [])
    prefix = "serve.batch_size."
    hist = {name[len(prefix):]: int(n) for name, n in sorted(counters.items())
            if name.startswith(prefix)}
    batches = int(counters.get("serve.batches", 0))
    batched = int(counters.get("serve.batched", 0))
    return {
        "requests": int(counters.get("serve.requests", 0)),
        "admitted": int(counters.get("serve.admitted", 0)),
        "rejected": int(counters.get("serve.rejected", 0)),
        "expired": int(counters.get("serve.expired", 0)),
        "cancelled": int(counters.get("serve.cancelled", 0)),
        "errored": int(counters.get("serve.errored", 0)),
        "completed": int(counters.get("serve.completed", 0)),
        "batches": batches,
        "batched": batched,
        "mean_batch_size": (batched / batches) if batches else None,
        "batch_size_hist": hist,
        "latency_p50_s": _percentile(samples, 0.50),
        "latency_p95_s": _percentile(samples, 0.95),
        "latency_p99_s": _percentile(samples, 0.99),
        "shards": list(shards or []),
    }


#: Keys of the ``report["surrogate"]`` section (schema v5).
REQUIRED_SURROGATE_KEYS = (
    "fits",
    "predictions",
    "screened",
    "simulated",
    "sims_avoided",
    "verify_misses",
    "fallbacks",
    "avoid_rate",
    "fit_latency_p50_s",
    "predict_latency_p50_s",
)


def surrogate_rollup(counters: dict, fit_samples: list | None = None,
                     predict_samples: list | None = None) -> dict:
    """Fold the ``surrogate.*`` counters into the report section.

    All-zero (``avoid_rate`` and percentiles None) when a run never used
    surrogate screening — the section is always present, like ``solver``
    and ``serve``, so consumers never need an existence check.  Latency
    percentiles are nearest-rank over the ``surrogate.fit_s`` /
    ``surrogate.predict_s`` telemetry samples (keys end in ``_s``:
    wall-clock values are volatile and stripped from structural digests).
    """
    screened = int(counters.get("surrogate.screened", 0))
    avoided = int(counters.get("surrogate.sims_avoided", 0))
    return {
        "fits": int(counters.get("surrogate.fits", 0)),
        "predictions": int(counters.get("surrogate.predictions", 0)),
        "screened": screened,
        "simulated": int(counters.get("surrogate.simulated", 0)),
        "sims_avoided": avoided,
        "verify_misses": int(counters.get("surrogate.verify_misses", 0)),
        "fallbacks": int(counters.get("surrogate.fallbacks", 0)),
        "avoid_rate": (avoided / screened) if screened else None,
        "fit_latency_p50_s": _percentile(list(fit_samples or []), 0.50),
        "predict_latency_p50_s": _percentile(list(predict_samples or []),
                                             0.50),
    }


#: Keys of the ``report["kernel"]`` section (schema v6).
REQUIRED_KERNEL_KEYS = (
    "groups",
    "batches",
    "batched_points",
    "scalar_points",
    "member_fallbacks",
    "group_fallbacks",
    "fault_exclusions",
    "mean_batch_points",
    "batch_latency_p50_s",
)


def kernel_rollup(counters: dict, batch_samples: list | None = None) -> dict:
    """Fold the ``kernel.*`` counters into the report section.

    All-zero (``mean_batch_points`` and the latency percentile None) when
    a run never used a batched-evaluation kernel — the section is always
    present, like ``solver``/``serve``/``surrogate``, so consumers never
    need an existence check.  The latency percentile is nearest-rank over
    the ``kernel.batch_s`` telemetry samples (keys end in ``_s``:
    wall-clock values are volatile and stripped from structural digests).
    """
    batches = int(counters.get("kernel.batches", 0))
    batched = int(counters.get("kernel.batched_points", 0))
    return {
        "groups": int(counters.get("kernel.groups", 0)),
        "batches": batches,
        "batched_points": batched,
        "scalar_points": int(counters.get("kernel.scalar_points", 0)),
        "member_fallbacks": int(counters.get("kernel.member_fallbacks", 0)),
        "group_fallbacks": int(counters.get("kernel.group_fallbacks", 0)),
        "fault_exclusions": int(counters.get("kernel.fault_exclusions", 0)),
        "mean_batch_points": (batched / batches) if batches else None,
        "batch_latency_p50_s": _percentile(list(batch_samples or []), 0.50),
    }


#: Keys of the ``report["topogen"]`` section (schema v8).
REQUIRED_TOPOGEN_KEYS = (
    "generated",
    "valid",
    "invalid",
    "interval_unproven",
    "symbolic_ranked",
    "symbolic_fallbacks",
    "pruned_out",
    "survivors",
    "sized",
    "prune_ratio",
)


def topogen_rollup(counters: dict) -> dict:
    """Fold the ``topogen.*`` counters into the report section.

    All-zero (``prune_ratio`` None) when a run never touched the
    compositional topology-generation funnel — the section is always
    present, like the other rollups, so consumers never need an
    existence check.  ``interval_unproven`` is the interval selector's
    unproven-pass count (``topology.interval_unproven``): candidates the
    funnel let through because their model was not interval-provable.
    ``prune_ratio`` is ranked-structures / sized-survivors — the cut the
    symbolic pruning pass achieved before any simulation ran.
    """
    ranked = int(counters.get("topogen.symbolic_ranked", 0)) \
        + int(counters.get("topogen.symbolic_fallbacks", 0))
    survivors = int(counters.get("topogen.survivors", 0))
    return {
        "generated": int(counters.get("topogen.generated", 0)),
        "valid": int(counters.get("topogen.valid", 0)),
        "invalid": int(counters.get("topogen.invalid", 0)),
        "interval_unproven": int(
            counters.get("topology.interval_unproven", 0)),
        "symbolic_ranked": int(counters.get("topogen.symbolic_ranked", 0)),
        "symbolic_fallbacks": int(
            counters.get("topogen.symbolic_fallbacks", 0)),
        "pruned_out": int(counters.get("topogen.pruned_out", 0)),
        "survivors": survivors,
        "sized": int(counters.get("topogen.sized", 0)),
        "prune_ratio": (ranked / survivors) if survivors else None,
    }


#: Keys of the ``report["macro"]`` section (schema v9).
REQUIRED_MACRO_KEYS = (
    "tiled",
    "units",
    "rails",
    "detours",
    "vias",
    "blockage_violations",
    "signoffs",
    "em_violations",
    "width_rejected",
    "detour_rate",
)


def macro_rollup(counters: dict) -> dict:
    """Fold the ``macrogen.*`` counters into the report section.

    All-zero (``detour_rate`` None) when a run never touched the
    memory-macro flow — the section is always present, like the other
    rollups, so consumers never need an existence check.
    ``width_rejected`` is the power grid's non-positive-width rejection
    count (``powergrid.width_rejected``); ``detour_rate`` is the
    fraction of routed rails the mesh router's A* had to jog around a
    blockage-map keepout.
    """
    rails = int(counters.get("macrogen.rails_routed", 0))
    detours = int(counters.get("macrogen.rail_detours", 0))
    return {
        "tiled": int(counters.get("macrogen.tiled", 0)),
        "units": int(counters.get("macrogen.units", 0)),
        "rails": rails,
        "detours": detours,
        "vias": int(counters.get("macrogen.vias", 0)),
        "blockage_violations": int(
            counters.get("macrogen.blockage_violations", 0)),
        "signoffs": int(counters.get("macrogen.signoffs", 0)),
        "em_violations": int(counters.get("macrogen.em_violations", 0)),
        "width_rejected": int(counters.get("powergrid.width_rejected", 0)),
        "detour_rate": (detours / rails) if rails else None,
    }


_SCHEMA_PATH = Path(__file__).with_name("run_manifest_schema.json")


class SchemaError(ValueError):
    """An instance does not match its declared schema."""


def check_report(report: dict) -> None:
    """Gate an ``engine.report()`` dict against the current contract.

    Raises :class:`SchemaError` on version or required-key drift — the
    check CI runs on the pulse-detector manifest so that a report-shape
    change can never land silently.
    """
    if not isinstance(report, dict):
        raise SchemaError(f"report must be a dict, got {type(report).__name__}")
    missing = [k for k in REQUIRED_REPORT_KEYS if k not in report]
    if missing:
        raise SchemaError(f"report is missing required keys: {missing}")
    version = report["schema_version"]
    if version != REPORT_SCHEMA_VERSION:
        raise SchemaError(
            f"report schema_version {version!r} != expected "
            f"{REPORT_SCHEMA_VERSION!r} (bump REPORT_SCHEMA_VERSION and the "
            f"consumers together if this change is intentional)")
    failures = report["failures"]
    for key in ("total", "by_type", "records"):
        if key not in failures:
            raise SchemaError(f"report['failures'] missing {key!r}")
    solver = report["solver"]
    missing_solver = [k for k in REQUIRED_SOLVER_KEYS if k not in solver]
    if missing_solver:
        raise SchemaError(
            f"report['solver'] missing keys: {missing_solver}")
    serve = report["serve"]
    missing_serve = [k for k in REQUIRED_SERVE_KEYS if k not in serve]
    if missing_serve:
        raise SchemaError(
            f"report['serve'] missing keys: {missing_serve}")
    if not isinstance(serve["shards"], list):
        raise SchemaError(
            f"report['serve']['shards'] must be a list, got "
            f"{type(serve['shards']).__name__}")
    for i, entry in enumerate(serve["shards"]):
        missing_shard = [k for k in REQUIRED_SHARD_KEYS if k not in entry]
        if missing_shard:
            raise SchemaError(
                f"report['serve']['shards'][{i}] missing keys: "
                f"{missing_shard}")
    surrogate = report["surrogate"]
    missing_surrogate = [k for k in REQUIRED_SURROGATE_KEYS
                         if k not in surrogate]
    if missing_surrogate:
        raise SchemaError(
            f"report['surrogate'] missing keys: {missing_surrogate}")
    kernel = report["kernel"]
    missing_kernel = [k for k in REQUIRED_KERNEL_KEYS if k not in kernel]
    if missing_kernel:
        raise SchemaError(
            f"report['kernel'] missing keys: {missing_kernel}")
    topogen = report["topogen"]
    missing_topogen = [k for k in REQUIRED_TOPOGEN_KEYS if k not in topogen]
    if missing_topogen:
        raise SchemaError(
            f"report['topogen'] missing keys: {missing_topogen}")
    macro = report["macro"]
    missing_macro = [k for k in REQUIRED_MACRO_KEYS if k not in macro]
    if missing_macro:
        raise SchemaError(
            f"report['macro'] missing keys: {missing_macro}")


def manifest_schema() -> dict:
    """The checked-in JSON Schema for the run manifest."""
    with open(_SCHEMA_PATH) as fh:
        return json.load(fh)


def validate_manifest(manifest: dict) -> None:
    """Validate a run manifest against the checked-in JSON Schema."""
    validate(manifest, manifest_schema())
    check_report(manifest["report"])


# ----------------------------------------------------------------------
# Minimal JSON-Schema validator
# ----------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; schemas mean real numbers
    return isinstance(value, expected)


def validate(instance: Any, schema: dict, root: dict | None = None,
             path: str = "$") -> None:
    """Validate ``instance`` against the JSON-Schema subset we use.

    Supported keywords: ``type`` (string or list), ``properties``,
    ``required``, ``items``, ``enum``, ``const`` and ``$ref`` into
    ``#/$defs/...``.  Raises :class:`SchemaError` naming the offending
    path.  Deliberately not a general validator — it covers exactly what
    ``run_manifest_schema.json`` needs, with zero dependencies.
    """
    root = root if root is not None else schema
    ref = schema.get("$ref")
    if ref is not None:
        target: Any = root
        for part in ref.lstrip("#/").split("/"):
            target = target[part]
        validate(instance, target, root, path)
        return
    if "const" in schema and instance != schema["const"]:
        raise SchemaError(
            f"{path}: expected const {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not in enum {schema['enum']!r}")
    type_spec = schema.get("type")
    if type_spec is not None:
        names = [type_spec] if isinstance(type_spec, str) else list(type_spec)
        if not any(_type_ok(instance, n) for n in names):
            raise SchemaError(
                f"{path}: expected type {'|'.join(names)}, got "
                f"{type(instance).__name__}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                validate(instance[key], sub, root, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], root, f"{path}[{i}]")
