"""Task-graph runner for flow stages (size → place → route → extract → verify).

The cell and chip flows are pipelines of expensive stages with explicit
data dependencies.  Declaring them as a :class:`JobGraph` buys three
things: dependency ordering is checked instead of implied by statement
order, every stage is timed under the engine's telemetry (``stage.<name>``
timers), and stage results are collected in one dict so a failed flow can
report exactly how far it got.

Execution is deterministic: ready jobs run in declaration order.  Stage
bodies remain free to use the engine's executor/cache internally for their
own data parallelism — the graph sequences stages, the engine parallelizes
the evaluations inside them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

JobFn = Callable[[dict[str, Any]], Any]


class JobGraphError(ValueError):
    """Raised on malformed graphs: duplicates, unknown deps, cycles."""


@dataclass(frozen=True)
class Job:
    name: str
    fn: JobFn
    deps: tuple[str, ...] = ()


@dataclass
class JobGraph:
    """Named jobs with dependencies, executed through an engine."""

    jobs: dict[str, Job] = field(default_factory=dict)

    def add(self, name: str, fn: JobFn,
            deps: Sequence[str] = ()) -> str:
        """Register ``fn`` under ``name``; ``fn`` receives the results dict."""
        if name in self.jobs:
            raise JobGraphError(f"duplicate job {name!r}")
        self.jobs[name] = Job(name, fn, tuple(deps))
        return name

    def order(self) -> list[str]:
        """Topological order, deterministic (declaration order among ready)."""
        for job in self.jobs.values():
            for dep in job.deps:
                if dep not in self.jobs:
                    raise JobGraphError(
                        f"job {job.name!r} depends on unknown job {dep!r}")
        remaining = dict(self.jobs)
        done: set[str] = set()
        ordered: list[str] = []
        while remaining:
            ready = [name for name, job in remaining.items()
                     if all(d in done for d in job.deps)]
            if not ready:
                raise JobGraphError(
                    f"dependency cycle among {sorted(remaining)}")
            for name in ready:
                ordered.append(name)
                done.add(name)
                del remaining[name]
        return ordered

    def run(self, engine=None,
            results: dict[str, Any] | None = None) -> dict[str, Any]:
        """Execute all jobs; returns ``{job name: result}``.

        ``engine`` is an optional :class:`repro.engine.EvaluationEngine`
        whose telemetry receives a ``stage.<name>`` timer and a
        ``jobs.completed`` counter per job.  Pre-seeded ``results`` entries
        are visible to job functions (useful for feeding external inputs
        in without a synthetic job).
        """
        results = results if results is not None else {}
        for name in self.order():
            job = self.jobs[name]
            if engine is not None:
                with engine.telemetry.timer(f"stage.{name}"):
                    results[name] = job.fn(results)
                engine.telemetry.count("jobs.completed")
            else:
                results[name] = job.fn(results)
        return results
