"""Task-graph runner for flow stages (size → place → route → extract → verify).

The cell and chip flows are pipelines of expensive stages with explicit
data dependencies.  Declaring them as a :class:`JobGraph` buys three
things: dependency ordering is checked instead of implied by statement
order, every stage is timed under the engine's telemetry (``stage.<name>``
timers), and stage results are collected in one dict so a failed flow can
report exactly how far it got.

Execution is deterministic: ready jobs run in declaration order.  Stage
bodies remain free to use the engine's executor/cache internally for their
own data parallelism — the graph sequences stages, the engine parallelizes
the evaluations inside them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.faults import RetryPolicy
from repro.engine.trace import span_if

JobFn = Callable[[dict[str, Any]], Any]


class JobGraphError(ValueError):
    """Raised on malformed graphs: duplicates, unknown deps, cycles."""


@dataclass(frozen=True)
class Job:
    name: str
    fn: JobFn
    deps: tuple[str, ...] = ()


@dataclass
class JobGraph:
    """Named jobs with dependencies, executed through an engine."""

    jobs: dict[str, Job] = field(default_factory=dict)

    def add(self, name: str, fn: JobFn,
            deps: Sequence[str] = ()) -> str:
        """Register ``fn`` under ``name``; ``fn`` receives the results dict."""
        if name in self.jobs:
            raise JobGraphError(f"duplicate job {name!r}")
        self.jobs[name] = Job(name, fn, tuple(deps))
        return name

    def order(self) -> list[str]:
        """Topological order, deterministic (declaration order among ready)."""
        for job in self.jobs.values():
            for dep in job.deps:
                if dep not in self.jobs:
                    raise JobGraphError(
                        f"job {job.name!r} depends on unknown job {dep!r}")
        remaining = dict(self.jobs)
        done: set[str] = set()
        ordered: list[str] = []
        while remaining:
            ready = [name for name, job in remaining.items()
                     if all(d in done for d in job.deps)]
            if not ready:
                raise JobGraphError(
                    f"dependency cycle among {sorted(remaining)}")
            for name in ready:
                ordered.append(name)
                done.add(name)
                del remaining[name]
        return ordered

    def run(self, engine=None,
            results: dict[str, Any] | None = None,
            retry_policy: RetryPolicy | None = None) -> dict[str, Any]:
        """Execute all jobs; returns ``{job name: result}``.

        ``engine`` is an optional :class:`repro.engine.EvaluationEngine`
        whose telemetry receives a ``stage.<name>`` timer and a
        ``jobs.completed`` counter per job.  Pre-seeded ``results`` entries
        are visible to job functions (useful for feeding external inputs
        in without a synthetic job).

        ``retry_policy`` grants each stage ``max_attempts`` tries: a stage
        raising a retryable exception (per the policy) is re-run after the
        policy's backoff, counted under ``jobs.retries``.  A fatal
        exception — or a retryable one out of attempts — propagates as
        before, after a ``jobs.failed`` count.

        When the engine carries a :class:`~repro.engine.trace.Tracer`,
        every stage additionally runs inside a span named after the job,
        so per-stage wall time and simulator-call counts land in the run
        manifest.
        """
        results = results if results is not None else {}
        tracer = getattr(engine, "tracer", None) if engine is not None \
            else None
        for name in self.order():
            job = self.jobs[name]
            if engine is not None:
                with span_if(tracer, name), \
                        engine.telemetry.timer(f"stage.{name}"):
                    results[name] = self._run_job(job, results, engine,
                                                  retry_policy)
                engine.telemetry.count("jobs.completed")
            else:
                results[name] = self._run_job(job, results, engine,
                                              retry_policy)
        return results

    @staticmethod
    def _run_job(job: Job, results: dict[str, Any], engine,
                 policy: RetryPolicy | None) -> Any:
        attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                return job.fn(results)
            except Exception as exc:
                retryable = policy is not None and policy.is_retryable(exc)
                tracer = getattr(engine, "tracer", None) \
                    if engine is not None else None
                if retryable and attempt < attempts:
                    if engine is not None:
                        engine.telemetry.count("jobs.retries")
                    if tracer is not None:
                        tracer.event("stage_retry", stage=job.name,
                                     attempt=attempt,
                                     exception_type=type(exc).__name__)
                    # Stage name as jitter token: two flows retrying the
                    # same stage concurrently still sleep identically run
                    # to run, but different stages de-synchronize.
                    delay = policy.delay(attempt, token=job.name)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if engine is not None:
                    engine.telemetry.count("jobs.failed")
                    engine.telemetry.count(f"jobs.failed.{job.name}")
                if tracer is not None:
                    tracer.event("stage_failed", stage=job.name,
                                 exception_type=type(exc).__name__)
                raise
