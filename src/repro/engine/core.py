"""The evaluation engine: executor + cache + telemetry behind one API.

Every synthesis loop in the toolkit funnels its circuit evaluations
through an :class:`EvaluationEngine`.  The engine checks the
content-addressed cache first, dispatches only the misses to its executor
(serial or process-parallel), stores the new results, and counts
everything.  Because caching and dispatch both live *above* the evaluation
function, the function itself stays a pure ``point → result`` mapping that
can run in a worker process unchanged.

Counter vocabulary (all under ``engine.``):

* ``engine.requests``      — points asked for, hit or miss;
* ``engine.evaluations``   — functions actually executed (cache misses);
* ``engine.cache_hits`` / ``engine.cache_misses`` — lookup outcomes.

The acceptance test for a warm cache is therefore one line: rerun the flow
and assert the ``engine.evaluations`` delta is zero.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine import trace as _trace
from repro.engine.cache import EvalCache
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.faults import FaultInjector, RetryPolicy, is_failure
from repro.engine.schema import (
    REPORT_SCHEMA_VERSION,
    kernel_rollup,
    macro_rollup,
    serve_rollup,
    solver_rollup,
    surrogate_rollup,
    topogen_rollup,
)
from repro.engine.telemetry import Telemetry
from repro.engine.trace import Tracer

#: Sentinel a batcher returns in result position for a member it could not
#: evaluate vectorized (nonlinear outlier, singular system, build failure).
#: The engine routes exactly those members through the normal executor
#: dispatch path, so their results — including failure semantics, retries
#: and fault injection — are identical to an unbatched run.
BATCH_FALLBACK = object()


class EvaluationEngine:
    """Cache-aware, executor-backed batch evaluation.

    The canonical construction path is
    ``EvaluationEngine.from_config(EngineConfig(...))``; the individual
    kwargs below predate :class:`~repro.engine.config.EngineConfig` and
    the resilience-layer ones (``retry_policy`` / ``fault_injector``) are
    deprecated as direct arguments.

    Parameters
    ----------
    executor:
        Where misses run; defaults to :class:`SerialExecutor`.
    cache:
        Optional :class:`EvalCache`.  Without it the engine still batches
        and counts, it just never skips work.  Failed evaluations
        (:class:`~repro.engine.faults.EvalFailure` results) are never
        cached — a transient error must not become permanent.
    telemetry:
        Optional shared :class:`Telemetry`; one is created if omitted.
    retry_policy / fault_injector:
        Deprecated — configure through ``EngineConfig``.  When given,
        installed on the executor: failing evaluations are retried per
        the policy and whatever still fails comes back as a structured
        ``EvalFailure`` (counted under ``failures.*`` and listed in
        :meth:`report`) instead of raising or being silently replaced by
        a sentinel value.
    tracer:
        Optional :class:`~repro.engine.trace.Tracer`.  The tracer is
        rebound to this engine's telemetry (one counter store per run) and
        receives a ``batch`` event per executor dispatch, ``failure`` /
        ``retry`` events from the resilience layer, and the span tree the
        flows build around stages.
    """

    def __init__(self, executor: Executor | None = None,
                 cache: EvalCache | None = None,
                 telemetry: Telemetry | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 tracer: Tracer | None = None):
        if retry_policy is not None or fault_injector is not None:
            warnings.warn(
                "passing retry_policy=/fault_injector= to EvaluationEngine "
                "directly is deprecated; use "
                "EvaluationEngine.from_config(EngineConfig(...))",
                DeprecationWarning, stacklevel=2)
        self._init(executor, cache, telemetry, retry_policy, fault_injector,
                   tracer)

    def _init(self, executor, cache, telemetry, retry_policy, fault_injector,
              tracer) -> None:
        self.executor = executor or SerialExecutor()
        self.cache = cache
        if telemetry is None:
            telemetry = tracer.telemetry if tracer is not None else Telemetry()
        self.telemetry = telemetry
        self.tracer = tracer
        if tracer is not None:
            # One counter store per engine: span deltas must observe the
            # same counters the engine bumps.
            tracer.telemetry = self.telemetry
        self.config = None
        if retry_policy is not None:
            self.executor.retry_policy = retry_policy
        if fault_injector is not None:
            self.executor.fault_injector = fault_injector

    @classmethod
    def from_config(cls, config=None) -> "EvaluationEngine":
        """Build an engine from an :class:`~repro.engine.config.EngineConfig`.

        The one construction path that wires every collaborator —
        executor, cache, telemetry, resilience layer, tracer — without
        deprecation warnings.
        """
        from repro.engine.config import EngineConfig
        config = config if config is not None else EngineConfig()
        engine = cls.__new__(cls)
        tracer = config.build_tracer(config.telemetry)
        engine._init(config.build_executor(), config.build_cache(),
                     config.telemetry, config.retry_policy,
                     config.fault_injector, tracer)
        engine.config = config
        return engine

    # -- evaluation ----------------------------------------------------
    def map_evaluate(self, fn: Callable[[Any], Any], points: Sequence[Any],
                     key_fn: Callable[[Any], str] | None = None,
                     batcher: Any = None) -> list:
        """``[fn(p) for p in points]`` with caching and batched dispatch.

        ``key_fn`` maps a point to its content-addressed cache key; when
        omitted (or when there is no cache) every point is evaluated.  The
        key must capture everything ``fn`` depends on — for circuit
        evaluations that is the serialized netlist plus analysis
        parameters (see :func:`repro.engine.cache.canonical_key`).

        ``batcher`` (optional) routes cache misses through a vectorized
        kernel before the executor sees them.  The protocol is three
        members: ``group(points) -> list[list[int]]`` partitions points
        into same-topology groups (index lists), ``evaluate(points) ->
        list`` computes one group vectorized (returning
        :data:`BATCH_FALLBACK` in any slot it cannot handle), and
        ``min_batch`` is the smallest group worth vectorizing.  Groups
        run parent-side under a suspended tracer — exactly like executor
        dispatch — so span counter attribution stays identical across
        executors; everything the batcher declines falls through to one
        ordinary executor batch.  Caching, ``engine.*`` counters and
        failure semantics are unchanged; the batched path only adds
        ``kernel.*`` counters.
        """
        points = list(points)
        tele = self.telemetry
        tele.count("engine.requests", len(points))
        with tele.timer("engine.map_evaluate"):
            if self.cache is None or key_fn is None:
                tele.count("engine.evaluations", len(points))
                if batcher is not None:
                    return self._evaluate_with_batcher(fn, points, batcher,
                                                       hits=0)
                return self._dispatch(fn, points, hits=0)
            results: list[Any] = [None] * len(points)
            miss_keys: list[str] = []
            miss_points: list[Any] = []
            key_slot: dict[str, int] = {}
            placements: list[tuple[int, int]] = []  # (result idx, miss slot)
            sentinel = object()
            for i, point in enumerate(points):
                key = key_fn(point)
                value = self.cache.get(key, sentinel)
                if value is not sentinel:
                    results[i] = value
                    continue
                # Dedup identical keys within the batch: duplicates share
                # one dispatched evaluation instead of racing each other.
                slot = key_slot.get(key)
                if slot is None:
                    slot = len(miss_keys)
                    key_slot[key] = slot
                    miss_keys.append(key)
                    miss_points.append(point)
                placements.append((i, slot))
            hits = len(points) - len(miss_keys)
            tele.count("engine.cache_hits", hits)
            tele.count("engine.cache_misses", len(miss_keys))
            tele.count("engine.evaluations", len(miss_keys))
            if miss_keys:
                if batcher is not None:
                    computed = self._evaluate_with_batcher(
                        fn, miss_points, batcher, hits=hits)
                else:
                    computed = self._dispatch(fn, miss_points, hits=hits)
                for key, value in zip(miss_keys, computed):
                    if not is_failure(value):
                        # Failures are never cached: the next request for
                        # this key re-evaluates (EvalCache.put would
                        # refuse the record anyway — this keeps the
                        # reject out of the cache stats for normal runs).
                        self.cache.put(key, value)
                for i, slot in placements:
                    results[i] = computed[slot]
            elif self.tracer is not None and points:
                self.tracer.event("batch", points=len(points), hits=hits,
                                  evaluations=0, failures=0, retries=0)
            return results

    def _dispatch(self, fn: Callable[[Any], Any], points: list,
                  hits: int = 0) -> list:
        """Run one executor batch, folding worker metrics into the trace.

        The active tracer is suspended for the duration of the dispatch:
        under a SerialExecutor the evaluation runs in-process and would
        otherwise bump ``analysis.*`` counters that a ParallelExecutor's
        workers (separate processes, no tracer) never could.  Masking the
        tracer here keeps span counter attribution identical across
        executors; the worker-side cost still arrives through
        ``BatchStats`` and is folded in as the ``engine.worker_eval``
        timer and a ``batch`` event.
        """
        tele = self.telemetry
        failures0 = tele.failure_count()
        retries0 = self.executor.retries
        with _trace.suspended():
            values = self._note_failures(self.executor.map_evaluate(fn, points))
        batch = self.executor.last_batch
        if batch.points:
            tele.record_time("engine.worker_eval", batch.worker_s)
        tracer = self.tracer
        if tracer is not None and points:
            failures = tele.failure_count() - failures0
            retries = self.executor.retries - retries0
            tracer.event("batch", points=len(points), hits=hits,
                         evaluations=len(points), failures=failures,
                         retries=retries, worker_s=batch.worker_s,
                         wall_s=batch.wall_s)
            if retries:
                tracer.event("retry", count=retries)
        return values

    def _evaluate_with_batcher(self, fn: Callable[[Any], Any], points: list,
                               batcher: Any, hits: int = 0) -> list:
        """Vectorized evaluation of one miss set, scalar fallback for the rest.

        Deterministic by construction: groups are evaluated parent-side in
        the order the batcher returns them (identical under serial and
        parallel executors), and every point the kernel cannot take — too
        small a group, a :data:`BATCH_FALLBACK` member, a group that
        raised, or a point the fault injector has scheduled to fail — is
        collected and dispatched through the *one* ordinary executor batch
        at the end, in input order.  Fault-scheduled points are excluded
        up front so their injected failures, retries and ``EvalFailure``
        records match an unbatched run exactly.
        """
        tele = self.telemetry
        results: list[Any] = [None] * len(points)
        injector = self.executor.fault_injector
        min_batch = max(2, int(getattr(batcher, "min_batch", 2) or 2))
        groups = [list(g) for g in batcher.group(points)]
        tele.count("kernel.groups", len(groups))
        fallback_idx: list[int] = []
        batched_total = 0
        for group in groups:
            eligible = []
            for i in group:
                if injector is not None and injector.schedule(
                        self.executor._token(points[i])) is not None:
                    tele.count("kernel.fault_exclusions")
                    fallback_idx.append(i)
                else:
                    eligible.append(i)
            if len(eligible) < min_batch:
                fallback_idx.extend(eligible)
                continue
            t0 = time.perf_counter()
            try:
                with _trace.suspended():
                    values = batcher.evaluate([points[i] for i in eligible])
            except Exception:
                # A broken kernel must never break the run: the whole
                # group rides the executor path instead.
                tele.count("kernel.group_fallbacks")
                fallback_idx.extend(eligible)
                continue
            tele.record_sample("kernel.batch_s", time.perf_counter() - t0)
            tele.count("kernel.batches")
            for i, value in zip(eligible, values):
                if value is BATCH_FALLBACK:
                    tele.count("kernel.member_fallbacks")
                    fallback_idx.append(i)
                else:
                    results[i] = value
                    batched_total += 1
        tele.count("kernel.batched_points", batched_total)
        tele.count("kernel.scalar_points", len(fallback_idx))
        if self.tracer is not None and points:
            self.tracer.event("kernel_batch", points=len(points),
                              groups=len(groups), batched=batched_total,
                              scalar=len(fallback_idx))
        fallback_idx.sort()
        if fallback_idx:
            computed = self._dispatch(
                fn, [points[i] for i in fallback_idx], hits=hits)
            for i, value in zip(fallback_idx, computed):
                results[i] = value
        return results

    def evaluate(self, fn: Callable[[Any], Any], point: Any,
                 key: str | None = None) -> Any:
        """Single-point convenience wrapper over :meth:`map_evaluate`."""
        key_fn = (lambda _p: key) if key is not None else None
        return self.map_evaluate(fn, [point], key_fn=key_fn)[0]

    def keyed(self, key_fn: Callable[[Any], str]) -> "KeyedEngine":
        """Bind a key function, yielding a plain ``map_evaluate`` adapter.

        The result satisfies the batch-evaluation hook protocol the
        optimizers accept (anything with ``map_evaluate(fn, points)``),
        with caching wired in.
        """
        return KeyedEngine(self, key_fn)

    def _note_failures(self, values: list) -> list:
        for value in values:
            if is_failure(value):
                self.telemetry.record_failure(value)
                if self.tracer is not None:
                    self.tracer.event("failure",
                                      exception_type=value.exception_type,
                                      token=value.token,
                                      attempts=value.attempts)
        return values

    # -- reporting / lifecycle ----------------------------------------
    def failure_count(self) -> int:
        return self.telemetry.failure_count()

    def failure_rate(self) -> float:
        """Fraction of executed evaluations that ultimately failed."""
        evals = self.telemetry.get("engine.evaluations")
        return self.failure_count() / evals if evals else 0.0

    def failure_summary(self) -> str | None:
        """One-line human summary of this engine's failures, or None."""
        total = self.failure_count()
        if not total:
            return None
        by_type = self.telemetry.failures_by_type()
        kinds = ", ".join(f"{name}x{n}"
                          for name, n in sorted(by_type.items()))
        retries = self.executor.retries
        return (f"WARNING: {total} evaluation(s) failed "
                f"({kinds}; {retries} retries; "
                f"failure rate {self.failure_rate():.1%})")

    def report(self) -> dict:
        """Versioned run report (see :mod:`repro.engine.schema`).

        Schema v2: ``schema_version`` + ``counters`` / ``timers`` /
        ``failures`` (from telemetry) + ``executor`` / ``cache``
        descriptions + ``spans`` (the tracer's span tree, ``[]`` when the
        engine runs untraced).  Schema v3 adds ``solver``: the rollup of
        the ``solver.*`` counters emitted by the shared factor-once/
        solve-many layer (:mod:`repro.analysis.solver`).  Schema v4 adds
        ``serve``: the rollup of the serving layer's ``serve.*`` counters
        and per-request latency samples (:mod:`repro.serve`).  Schema v5
        adds ``surrogate``: the rollup of the surrogate screening layer's
        ``surrogate.*`` counters and fit/predict latency samples
        (:mod:`repro.surrogate`).  Schema v6 adds ``kernel``: the rollup
        of the batched-evaluation kernel's ``kernel.*`` counters and
        per-group latency samples (:mod:`repro.analysis.batch` + the
        ``batcher=`` path of :meth:`map_evaluate`).  Schema v7 adds
        ``serve.shards``: the per-shard outcome breakdown a
        :class:`repro.serve.ShardRouter` fleet report carries — ``[]``
        here, since one engine is by definition one (unsharded) worker.
        Schema v8 adds ``topogen``: the rollup of the compositional
        topology-generation funnel's ``topogen.*`` counters
        (:mod:`repro.synthesis.compose`).  Schema v9 adds ``macro``: the
        rollup of the memory-macro flow's ``macrogen.*`` counters plus
        the power grid's width-rejection count (:mod:`repro.macro`).
        """
        out = self.telemetry.report()
        out["schema_version"] = REPORT_SCHEMA_VERSION
        out["executor"] = self.executor.describe()
        out["cache"] = self.cache.report() if self.cache is not None else None
        out["spans"] = (self.tracer.span_tree()
                        if self.tracer is not None else [])
        out["solver"] = solver_rollup(out["counters"])
        out["serve"] = serve_rollup(
            out["counters"], self.telemetry.sample_values("serve.latency_s"))
        out["surrogate"] = surrogate_rollup(
            out["counters"],
            self.telemetry.sample_values("surrogate.fit_s"),
            self.telemetry.sample_values("surrogate.predict_s"))
        out["kernel"] = kernel_rollup(
            out["counters"], self.telemetry.sample_values("kernel.batch_s"))
        out["topogen"] = topogen_rollup(out["counters"])
        out["macro"] = macro_rollup(out["counters"])
        return out

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class KeyedEngine:
    """An engine with a pre-bound cache key function.

    Exposes the two-argument ``map_evaluate(fn, points)`` the optimizer
    batch hooks expect, while still routing through the parent engine's
    cache and telemetry.
    """

    engine: EvaluationEngine
    key_fn: Callable[[Any], str]
    batcher: Any = None

    def map_evaluate(self, fn: Callable[[Any], Any],
                     points: Sequence[Any]) -> list:
        return self.engine.map_evaluate(fn, points, key_fn=self.key_fn,
                                        batcher=self.batcher)
