"""Lightweight counters and timers for the evaluation engine.

Every synthesis loop in the toolkit is dominated by repeated circuit
evaluations, and the paper's cost argument (the 4x-10x CPU overhead of
manufacturability-aware synthesis, §2.2) only means anything if evaluation
counts and wall time are actually measured.  :class:`Telemetry` is the one
place they are recorded: the engine counts requests/evaluations/cache hits,
the flow stages time themselves, and ``report()`` returns it all as a plain
dict that benchmarks and flows can print or assert on.

The implementation is deliberately minimal — dicts plus ``perf_counter`` —
so instrumentation never becomes the bottleneck it is supposed to measure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TimerStat:
    """Accumulated wall time for one named operation."""

    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclass
class Telemetry:
    """Named counters plus named wall-clock timers.

    Counters are plain integers (``count("engine.evaluations", 8)``);
    timers accumulate call count and total seconds through the
    :meth:`timer` context manager.  ``merge`` folds another instance in,
    which lets per-stage telemetry roll up into a flow-level report.
    """

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)
    failure_records: list = field(default_factory=list)
    max_failure_records: int = 200
    samples: dict[str, list] = field(default_factory=dict)
    max_samples: int = 4096

    # -- counters ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> int:
        new = self.counters.get(name, 0) + n
        self.counters[name] = new
        return new

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers --------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            stat = self.timers.setdefault(name, TimerStat())
            stat.calls += 1
            stat.total_s += time.perf_counter() - t0

    def record_time(self, name: str, seconds: float) -> None:
        stat = self.timers.setdefault(name, TimerStat())
        stat.calls += 1
        stat.total_s += seconds

    # -- samples -------------------------------------------------------
    def record_sample(self, name: str, value: float) -> None:
        """Keep one raw observation for percentile rollups.

        Unlike counters/timers, samples preserve the distribution — the
        serving layer records per-request latencies here so
        ``report()["serve"]`` can state p50/p95/p99.  Bounded at
        ``max_samples`` per name (first observations win) so a hot
        service cannot grow telemetry without bound; the counters still
        see every occurrence.
        """
        values = self.samples.setdefault(name, [])
        if len(values) < self.max_samples:
            values.append(float(value))

    def sample_values(self, name: str) -> list:
        return self.samples.get(name, [])

    # -- failures ------------------------------------------------------
    def record_failure(self, failure) -> None:
        """Count one :class:`~repro.engine.faults.EvalFailure`.

        Bumps ``failures.total`` plus a per-exception-class counter, and
        keeps the first ``max_failure_records`` structured records for
        ``report()`` — enough to debug a bad run without letting a
        pathological one grow the report without bound.
        """
        self.count("failures.total")
        self.count(f"failures.{failure.exception_type}")
        if len(self.failure_records) < self.max_failure_records:
            self.failure_records.append(failure)

    def failure_count(self) -> int:
        return self.get("failures.total")

    def failures_by_type(self) -> dict[str, int]:
        prefix = "failures."
        return {name[len(prefix):]: n for name, n in self.counters.items()
                if name.startswith(prefix) and name != "failures.total"}

    # -- aggregation ---------------------------------------------------
    @staticmethod
    def _failure_sort_key(failure) -> tuple:
        return (failure.exception_type, failure.token or "",
                failure.message, failure.attempts)

    def merge(self, other: "Telemetry") -> None:
        """Fold another instance in, deterministically.

        Counters and timers are commutative sums.  Failure records are
        re-sorted by ``(exception_type, token, message, attempts)`` before
        the bound is applied, so the merged record list — and therefore
        any manifest built from it — is byte-stable no matter in which
        order per-worker telemetries arrive (pool restarts reshuffle
        arrival order, content does not change).
        """
        for name, n in other.counters.items():
            self.count(name, n)
        for name, stat in other.timers.items():
            mine = self.timers.setdefault(name, TimerStat())
            mine.calls += stat.calls
            mine.total_s += stat.total_s
        for name, values in other.samples.items():
            mine_values = self.samples.setdefault(name, [])
            room = self.max_samples - len(mine_values)
            if room > 0:
                mine_values.extend(values[:room])
        combined = self.failure_records + list(other.failure_records)
        combined.sort(key=self._failure_sort_key)
        self.failure_records = combined[:self.max_failure_records]

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.failure_records.clear()
        self.samples.clear()

    def report(self) -> dict:
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {"calls": stat.calls, "total_s": stat.total_s,
                       "mean_s": stat.mean_s}
                for name, stat in self.timers.items()
            },
            "failures": {
                "total": self.failure_count(),
                "by_type": self.failures_by_type(),
                "records": [f.as_dict() for f in self.failure_records],
            },
        }
