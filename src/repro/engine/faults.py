"""Fault injection, retry policies and structured evaluation failures.

At production scale the evaluation engine's workload *will* fail:
Newton refuses to converge on an electrically absurd intermediate sizing,
the MNA matrix of a degenerate netlist is singular, a pool worker crashes
or hangs.  The ML-era AMS synthesis frameworks treat simulator-failure
handling as a first-class part of the optimization loop rather than an
abort condition, and this module is where that happens for us:

* :class:`FaultInjector` — a deterministic, seedable fault source that can
  be installed on any executor (or wrapped around any evaluation function)
  to inject convergence failures, singular matrices, worker crashes and
  artificial delays at a configurable rate.  Decisions are a pure function
  of ``(seed, point token, attempt)``, never of call order, so the same
  fault schedule fires under serial and parallel executors alike — which
  is what makes differential testing of the resilience layer possible.
* :class:`RetryPolicy` — how many attempts an evaluation gets, which
  exception classes are worth retrying (transient: non-convergence,
  crashed workers, timeouts) versus fatal (a ``TypeError`` will not go
  away on attempt two), and how long to back off between rounds.
* :class:`EvalFailure` — the structured record an evaluation that
  exhausted its attempts turns into.  Failures are *values*, not silently
  swallowed exceptions: they flow back through ``map_evaluate`` in result
  position, are counted by :class:`~repro.engine.telemetry.Telemetry`,
  surface in ``engine.report()``, and are never stored by
  :class:`~repro.engine.cache.EvalCache`.

Equality of :class:`EvalFailure` ignores the elapsed-time field, so two
runs that fail identically compare equal even though their wall-clock
differs — the property the serial-vs-parallel differential tests assert.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable


class WorkerCrashError(RuntimeError):
    """A pool worker died (or was injected to have died) mid-evaluation."""


class EvalTimeoutError(RuntimeError):
    """An evaluation exceeded its :attr:`RetryPolicy.timeout_s` budget."""


def _transient_types() -> tuple[type, ...]:
    """The domain exception classes that are transient by default.

    Late import: the engine package stays importable even if the analysis
    stack is absent (the executors are generic infrastructure).
    """
    types: list[type] = [WorkerCrashError, EvalTimeoutError]
    try:
        from repro.analysis.dcop import ConvergenceError
        from repro.analysis.mna import SingularCircuitError
        types += [ConvergenceError, SingularCircuitError]
    except ImportError:  # analysis stack not installed: engine-only use
        pass
    return tuple(types)


# ----------------------------------------------------------------------
# Structured failures
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EvalFailure:
    """What a failed evaluation returns in place of its result.

    ``elapsed_s`` is excluded from equality/hash so that identically
    failing runs compare equal regardless of wall-clock.
    """

    exception_type: str
    message: str
    attempts: int = 1
    token: str | None = None
    retryable: bool = False
    elapsed_s: float = field(default=0.0, compare=False)

    def as_dict(self) -> dict:
        return {
            "exception_type": self.exception_type,
            "message": self.message,
            "attempts": self.attempts,
            "token": self.token,
            "retryable": self.retryable,
            "elapsed_s": self.elapsed_s,
        }

    def __str__(self) -> str:  # readable in logs and warning summaries
        return (f"EvalFailure({self.exception_type}: {self.message}; "
                f"attempts={self.attempts})")


def is_failure(value: Any) -> bool:
    """True when an evaluation result is an :class:`EvalFailure` record."""
    return isinstance(value, EvalFailure)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Attempts, backoff and retryable/fatal classification.

    Parameters
    ----------
    max_attempts:
        Total tries per point (1 = no retry).
    backoff_s / backoff_factor:
        Sleep before retry round ``k`` is ``backoff_s * factor**(k-1)``.
        The default 0 keeps tests instant; real deployments set it.
    jitter / jitter_seed:
        Deterministic spread added to each backoff sleep: the base delay
        is scaled by ``1 + jitter * u`` where ``u ∈ [0, 1)`` is a SHA-256
        draw over ``(jitter_seed, attempt, token)`` — a pure function of
        the seed and the retrying work's identity, never of call order or
        an RNG stream.  Concurrent retriers (pool workers, parallel serve
        clients) therefore de-synchronize instead of thundering back in
        lockstep, while two runs of the same seeded schedule still sleep
        identically.  ``jitter=0`` (or an empty token) reproduces the
        exact pre-jitter schedule.
    timeout_s:
        Per-job wall-clock budget.  A job over budget raises
        :class:`EvalTimeoutError` (retryable by default) and, under the
        parallel executor, condemns its worker pool: the pool is torn
        down and the remaining jobs requeued on a fresh one.
    retryable:
        Exception classes worth another attempt.  ``None`` selects the
        transient default set: ``ConvergenceError``,
        ``SingularCircuitError``, :class:`WorkerCrashError`,
        :class:`EvalTimeoutError`.
    fatal:
        Classes that must never be retried even if they match
        ``retryable`` (fatal wins).  Anything neither retryable nor
        explicitly fatal fails immediately — an unexpected ``TypeError``
        becomes an :class:`EvalFailure` on its first attempt instead of
        being silently swallowed or retried pointlessly.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    timeout_s: float | None = None
    retryable: tuple[type, ...] | None = None
    fatal: tuple[type, ...] = ()
    jitter: float = 0.1
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def retryable_types(self) -> tuple[type, ...]:
        return self.retryable if self.retryable is not None \
            else _transient_types()

    def is_retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, self.fatal):
            return False
        return isinstance(exc, self.retryable_types())

    def delay(self, completed_attempts: int, token: str = "") -> float:
        """Backoff before the attempt after ``completed_attempts``.

        ``token`` identifies the retrying work (a point token, a stage
        name) and seeds the deterministic jitter draw; without one the
        delay is the bare geometric schedule.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * self.backoff_factor \
            ** (completed_attempts - 1)
        if self.jitter <= 0.0 or not token:
            return base
        msg = f"{self.jitter_seed}|{completed_attempts}|{token}".encode()
        draw = int.from_bytes(hashlib.sha256(msg).digest()[:8],
                              "big") / 2.0 ** 64
        return base * (1.0 + self.jitter * draw)


# ----------------------------------------------------------------------
# Point tokens: stable content identity for fault decisions and records
# ----------------------------------------------------------------------

def point_token(point: Any) -> str:
    """Stable content hash of an arbitrary evaluation point.

    Uses the cache's canonical encoding where possible (dicts sort, numpy
    collapses, circuits serialize); falls back to ``repr`` for types the
    canonical encoder rejects.  Deterministic across processes — no
    dependence on ``id()`` or hash randomization.
    """
    from repro.engine.cache import canonical_key
    try:
        return canonical_key(point)
    except TypeError:
        return hashlib.sha256(repr(point).encode()).hexdigest()


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

FAULT_KINDS = ("convergence", "singular", "crash", "delay")


def _make_fault(kind: str, token: str) -> Exception:
    tag = token[:12]
    if kind == "convergence":
        try:
            from repro.analysis.dcop import ConvergenceError
        except ImportError:
            return WorkerCrashError(f"injected convergence fault [{tag}]")
        return ConvergenceError(f"injected Newton non-convergence [{tag}]")
    if kind == "singular":
        try:
            from repro.analysis.mna import SingularCircuitError
        except ImportError:
            return WorkerCrashError(f"injected singular fault [{tag}]")
        return SingularCircuitError(f"injected singular MNA matrix [{tag}]")
    if kind == "crash":
        return WorkerCrashError(f"injected worker crash [{tag}]")
    raise ValueError(f"unknown fault kind {kind!r}")


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic, seedable fault source.

    Whether (and how) a given evaluation faults is a pure function of
    ``(seed, point token, attempt)`` — a SHA-256 draw, not an RNG stream —
    so the schedule is independent of evaluation order, executor kind and
    process boundaries.  Retries see a fresh draw (the attempt number is
    part of the hash), which is what lets an injected transient fault
    actually clear on a later attempt.

    ``kinds`` weights are uniform; ``"delay"`` sleeps ``delay_s`` and then
    evaluates normally (use it with a ``timeout_s`` policy to exercise the
    hung-worker path), while the other kinds raise their exception.
    """

    rate: float
    seed: int = 0
    kinds: tuple[str, ...] = ("convergence", "singular", "crash")
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown or not self.kinds:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")

    # -- deterministic draws ------------------------------------------
    def _draw(self, token: str, attempt: int, salt: str) -> float:
        msg = f"{self.seed}|{attempt}|{salt}|{token}".encode()
        digest = hashlib.sha256(msg).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def schedule(self, token: str, attempt: int = 1) -> str | None:
        """The fault kind this (token, attempt) draws, or None."""
        if self.rate <= 0.0:
            return None
        if self._draw(token, attempt, "fire") >= self.rate:
            return None
        pick = int(self._draw(token, attempt, "kind") * len(self.kinds))
        return self.kinds[min(pick, len(self.kinds) - 1)]

    # -- installation -------------------------------------------------
    def wrap(self, fn: Callable[[Any], Any],
             token_fn: Callable[[Any], str] | None = None,
             attempt: int = 1) -> "InjectedFunction":
        """Wrap an evaluation function so faults fire before it runs."""
        return InjectedFunction(fn, self, token_fn, attempt)

    @classmethod
    def from_env(cls, var: str = "REPRO_FAULT_RATE", seed: int = 0,
                 **kwargs) -> "FaultInjector | None":
        """Build an injector from an environment rate, or None if unset.

        This is the hook the CI fault-injection job uses:
        ``REPRO_FAULT_RATE=0.1 pytest tests/test_faults.py``.
        """
        raw = os.environ.get(var, "").strip()
        if not raw:
            return None
        rate = float(raw)
        if rate <= 0.0:
            return None
        return cls(rate=rate, seed=seed, **kwargs)


@dataclass(frozen=True)
class InjectedFunction:
    """A picklable evaluation function with a fault injector in front.

    Frozen and built from picklable parts, so the parallel executor ships
    it to worker processes unchanged; the fault schedule is content-based,
    so workers reach the same decisions the serial path would.
    ``with_attempt`` rebinds the attempt number for retry rounds.
    """

    fn: Callable[[Any], Any]
    injector: FaultInjector
    token_fn: Callable[[Any], str] | None = None
    attempt: int = 1

    def token_of(self, point: Any) -> str:
        return self.token_fn(point) if self.token_fn is not None \
            else point_token(point)

    def with_attempt(self, attempt: int) -> "InjectedFunction":
        return replace(self, attempt=attempt)

    def __call__(self, point: Any) -> Any:
        token = self.token_of(point)
        kind = self.injector.schedule(token, self.attempt)
        if kind == "delay":
            time.sleep(self.injector.delay_s)
        elif kind is not None:
            raise _make_fault(kind, token)
        return self.fn(point)
