"""One typed configuration object for the evaluation engine.

The engine grew its collaborators one PR at a time — executor, cache,
telemetry, retry policy, fault injector, and now a tracer — and every
flow and sizer signature grew a matching kwarg.  :class:`EngineConfig`
consolidates them: build one config, hand it to
:meth:`repro.engine.EvaluationEngine.from_config`,
:func:`repro.flows.design_ota_cell`, :func:`repro.flows.assemble_chip`,
:class:`repro.synthesis.SimulationBasedSizer` or
:func:`repro.synthesis.pulse_detector.pulse_detector_flow`.  The legacy
scattered kwargs keep working but raise ``DeprecationWarning``.

``describe()`` renders the config as a JSON-safe dict, which is what the
run manifest records — a manifest always says exactly how its run was
configured.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import EvalCache
from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.engine.faults import FaultInjector, RetryPolicy
from repro.engine.telemetry import Telemetry
from repro.engine.trace import Tracer


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and batching knobs for the serving layer.

    Lives here (pure data, no serve imports) so an
    :class:`EngineConfig` can carry the full service shape and a run
    manifest can record it; :class:`repro.serve.Broker` consumes it.

    Parameters
    ----------
    max_batch / max_wait_ms:
        Micro-batcher shape: coalesce up to ``max_batch`` compatible
        requests, waiting at most ``max_wait_ms`` for stragglers after
        the first request of a batch is dequeued.  ``max_wait_ms=0``
        dispatches whatever is already queued without waiting.
    max_queue_depth:
        Bound on each priority class's queue.  A submit beyond it raises
        :class:`repro.serve.RejectedError` — explicit backpressure,
        never a silent drop.
    rate / burst:
        Per-client token-bucket admission: sustained ``rate`` requests/s
        with ``burst`` tokens of headroom.  ``rate=None`` disables
        rate limiting.
    default_deadline_s:
        Deadline applied to requests that do not carry their own;
        ``None`` means no deadline.
    interactive_burst:
        Fairness knob: after this many consecutive ``interactive``
        batches with ``batch``-class work waiting, one ``batch`` batch
        is served — strict-priority latency for interactive traffic
        without starving bulk clients.
    http_max_wait_s:
        Server-side ceiling on how long one HTTP ``/evaluate`` or
        ``/synthesize`` handler blocks when the request carries neither
        a ``timeout_s`` nor any deadline — without it a few such
        requests would pin ``ThreadingHTTPServer`` threads (and their
        connections) forever.  Hitting the ceiling answers 504 with
        ``outcome="pending"``; the request itself stays in flight.
        ``None`` disables the ceiling.
    corpus_dir:
        Directory in which the broker appends a ``corpus_index.jsonl``
        sidecar mapping each completed request's content-addressed cache
        key to its sizing point.  Together with a disk
        :class:`~repro.engine.cache.EvalCache` layer this makes served
        traffic harvestable as surrogate training data
        (:func:`repro.surrogate.harvest_cache`) — heavy load literally
        grows the corpus that later makes sizing cheaper.  ``None``
        (default) records nothing.
    shards:
        Fleet width for :class:`repro.serve.ShardRouter`: requests are
        consistent-hashed by workload digest onto this many broker/engine
        worker processes.  ``1`` (default) is the single-broker shape —
        a plain :class:`~repro.serve.Broker` ignores the knob.
    shared_store_dir:
        Directory of the cross-shard content-addressed result store
        (:class:`repro.serve.SharedStore`): every shard's engine mounts
        it as its disk :class:`~repro.engine.cache.EvalCache` layer, so
        a result computed on one shard is a cache hit on every other.
        ``None`` keeps shards' caches private.
    http_host / http_port / synthesize_workload:
        The HTTP front-door settings, consolidated here from the
        scattered ``make_server(...)`` kwargs (which keep working behind
        a ``DeprecationWarning``; setting a knob both here and there is
        a ``ValueError``).  ``http_port=0`` binds an ephemeral port;
        ``synthesize_workload`` names the registered workload that
        ``POST /synthesize`` runs (``None`` answers 404).
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    rate: float | None = None
    burst: int = 32
    default_deadline_s: float | None = None
    interactive_burst: int = 4
    http_max_wait_s: float | None = 300.0
    corpus_dir: str | None = None
    shards: int = 1
    shared_store_dir: str | None = None
    http_host: str = "127.0.0.1"
    http_port: int = 0
    synthesize_workload: str | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.interactive_burst < 1:
            raise ValueError("interactive_burst must be >= 1")
        if self.http_max_wait_s is not None and self.http_max_wait_s <= 0:
            raise ValueError("http_max_wait_s must be positive (or None)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= self.http_port <= 65535:
            raise ValueError("http_port must be in [0, 65535]")

    def describe(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_queue_depth": self.max_queue_depth,
            "rate": self.rate,
            "burst": self.burst,
            "default_deadline_s": self.default_deadline_s,
            "interactive_burst": self.interactive_burst,
            "http_max_wait_s": self.http_max_wait_s,
            "corpus_dir": self.corpus_dir,
            "shards": self.shards,
            "shared_store_dir": self.shared_store_dir,
            "http_host": self.http_host,
            "http_port": self.http_port,
            "synthesize_workload": self.synthesize_workload,
        }


@dataclass(frozen=True)
class SurrogateConfig:
    """Trust-region policy knobs for cache-trained surrogate screening.

    Pure data (no surrogate imports) so an :class:`EngineConfig` can
    carry it and a run manifest can record it;
    :class:`repro.surrogate.SurrogateScreen` consumes it.

    Parameters
    ----------
    simulate_fraction:
        Fraction of each screened batch that is always simulated for
        real — the predicted-best head of the ranking.
    explore_fraction:
        Additional fraction simulated purely for model improvement: the
        highest-``uncertainty`` points of the batch.
    winner_margin:
        Relative margin of the claimed-winner rule: any candidate whose
        *predicted* cost undercuts ``best_real + margin·|best_real|`` is
        promoted to real simulation.  A predicted cost is therefore
        never allowed to become the run's best — winners are always
        verified.
    min_fit:
        Corpus size below which the model is cold and every candidate is
        simulated (the cold-start rule).
    refit_every:
        Number of freshly simulated points between model refits.
    miss_tol:
        Relative prediction error above which a verified point counts as
        a ``surrogate.verify_misses`` miss.
    miss_window / max_miss_rate / fallback_batches:
        The trust-region fallback: when the rolling miss rate over the
        last ``miss_window`` verified points exceeds ``max_miss_rate``,
        screening is suspended for ``fallback_batches`` batches
        (simulate everything, keep training) before being retried.
    length_scale / ridge / max_centers / seed:
        :class:`repro.surrogate.RbfSurrogate` hyper-parameters; ``seed``
        drives the deterministic center subsample, keeping training
        byte-stable.
    max_corpus:
        Bound on retained training records (oldest evicted first).
    corpus_dir:
        Directory for corpus persistence: ``corpus.jsonl`` is loaded on
        start and rewritten at the end of a screened sizing run, and a
        ``corpus_index.jsonl`` sidecar (cache key → sizing) written
        there — by sizing runs or by a serve broker — lets
        :func:`repro.surrogate.harvest_cache` turn a shared disk
        :class:`~repro.engine.cache.EvalCache` into training data.
    """

    simulate_fraction: float = 0.25
    explore_fraction: float = 0.1
    winner_margin: float = 0.05
    min_fit: int = 64
    refit_every: int = 32
    miss_tol: float = 0.2
    miss_window: int = 64
    max_miss_rate: float = 0.3
    fallback_batches: int = 4
    length_scale: float = 0.5
    ridge: float = 1e-6
    max_centers: int = 512
    max_corpus: int = 4096
    seed: int = 0
    corpus_dir: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.simulate_fraction <= 1.0:
            raise ValueError("simulate_fraction must be in (0, 1]")
        if not 0.0 <= self.explore_fraction <= 1.0:
            raise ValueError("explore_fraction must be in [0, 1]")
        if self.winner_margin < 0.0:
            raise ValueError("winner_margin must be >= 0")
        if self.min_fit < 2:
            raise ValueError("min_fit must be >= 2")
        if self.refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if self.miss_tol <= 0.0:
            raise ValueError("miss_tol must be positive")
        if self.miss_window < 1:
            raise ValueError("miss_window must be >= 1")
        if not 0.0 < self.max_miss_rate <= 1.0:
            raise ValueError("max_miss_rate must be in (0, 1]")
        if self.fallback_batches < 1:
            raise ValueError("fallback_batches must be >= 1")
        if self.length_scale <= 0.0:
            raise ValueError("length_scale must be positive")
        if self.ridge <= 0.0:
            raise ValueError("ridge must be positive")
        if self.max_centers < 1:
            raise ValueError("max_centers must be >= 1")
        if self.max_corpus < self.min_fit:
            raise ValueError("max_corpus must be >= min_fit")

    def describe(self) -> dict:
        return {
            "simulate_fraction": self.simulate_fraction,
            "explore_fraction": self.explore_fraction,
            "winner_margin": self.winner_margin,
            "min_fit": self.min_fit,
            "refit_every": self.refit_every,
            "miss_tol": self.miss_tol,
            "miss_window": self.miss_window,
            "max_miss_rate": self.max_miss_rate,
            "fallback_batches": self.fallback_batches,
            "length_scale": self.length_scale,
            "ridge": self.ridge,
            "max_centers": self.max_centers,
            "max_corpus": self.max_corpus,
            "seed": self.seed,
            "corpus_dir": self.corpus_dir,
        }


@dataclass
class EngineConfig:
    """Everything an :class:`~repro.engine.core.EvaluationEngine` needs.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"parallel"``, ``"thread"``, or an
        explicit :class:`Executor` instance.  ``workers`` applies to the
        ``"parallel"`` and ``"thread"`` shorthands; ``chunksize`` to
        ``"parallel"`` only.
    cache:
        ``True`` builds a fresh :class:`EvalCache` (``cache_entries``,
        ``disk_cache_dir``); an instance is used as-is; ``False`` runs
        uncached.
    retry_policy / fault_injector / telemetry:
        Installed on the engine exactly as the legacy kwargs were.
    trace:
        ``True`` builds a :class:`~repro.engine.trace.Tracer`; an explicit
        ``tracer`` instance wins.  ``trace_dir`` implies ``trace`` and
        additionally makes traced flows write ``manifest.json`` +
        ``trace.jsonl`` there at the end of the run.
    serve / surrogate:
        Optional :class:`ServeConfig` / :class:`SurrogateConfig` blocks.
        ``surrogate`` makes :class:`repro.synthesis.SimulationBasedSizer`
        screen candidate batches through a cache-trained surrogate
        (:mod:`repro.surrogate`) instead of simulating everything.
    batch_kernel:
        ``True`` routes same-topology cache misses through the
        symbolic-once/evaluate-many kernels of
        :mod:`repro.analysis.batch` (stacked MNA assembly + batched
        dense LU) instead of per-point dispatch, with automatic scalar
        fallback for anything the kernel declines.  Consumed by
        :class:`repro.synthesis.SimulationBasedSizer` and reflected in
        the ``kernel.*`` counters of ``engine.report()``.
    """

    executor: Executor | str = "serial"
    workers: int | None = None
    chunksize: int | None = None
    cache: EvalCache | bool = False
    cache_entries: int = 65536
    disk_cache_dir: str | Path | None = None
    telemetry: Telemetry | None = None
    retry_policy: RetryPolicy | None = None
    fault_injector: FaultInjector | None = None
    trace: bool = False
    tracer: Tracer | None = field(default=None, repr=False)
    trace_dir: str | Path | None = None
    serve: ServeConfig | None = None
    surrogate: SurrogateConfig | None = None
    batch_kernel: bool = False

    # -- part builders -------------------------------------------------
    def build_executor(self) -> Executor:
        if isinstance(self.executor, Executor):
            return self.executor
        if self.executor == "serial":
            return SerialExecutor()
        if self.executor == "parallel":
            return ParallelExecutor(workers=self.workers,
                                    chunksize=self.chunksize)
        if self.executor == "thread":
            return ThreadExecutor(workers=self.workers)
        raise ValueError(
            f"executor must be 'serial', 'parallel', 'thread' or an "
            f"Executor instance, got {self.executor!r}")

    def build_cache(self) -> EvalCache | None:
        if isinstance(self.cache, EvalCache):
            return self.cache
        if self.cache:
            return EvalCache(max_entries=self.cache_entries,
                             disk_dir=self.disk_cache_dir)
        return None

    def build_tracer(self, telemetry: Telemetry | None = None) -> Tracer | None:
        if self.tracer is not None:
            return self.tracer
        if self.trace or self.trace_dir is not None:
            return Tracer(telemetry)
        return None

    # -- manifest rendering --------------------------------------------
    def describe(self) -> dict:
        """JSON-safe summary of this config, recorded in run manifests."""
        executor = self.executor if isinstance(self.executor, str) \
            else type(self.executor).__name__
        policy = self.retry_policy
        injector = self.fault_injector
        return {
            "executor": executor,
            "workers": self.workers,
            "chunksize": self.chunksize,
            "cache": bool(self.cache),
            "cache_entries": self.cache_entries
            if self.cache is not False else None,
            "disk_cache_dir": str(self.disk_cache_dir)
            if self.disk_cache_dir is not None else None,
            "retry_policy": None if policy is None else {
                "max_attempts": policy.max_attempts,
                "backoff_s": policy.backoff_s,
                "backoff_factor": policy.backoff_factor,
                "timeout_s": policy.timeout_s,
                "jitter": policy.jitter,
                "jitter_seed": policy.jitter_seed,
            },
            "fault_injector": None if injector is None else {
                "rate": injector.rate,
                "seed": injector.seed,
                "kinds": list(injector.kinds),
            },
            "trace": bool(self.trace or self.tracer is not None
                          or self.trace_dir is not None),
            "trace_dir": str(self.trace_dir)
            if self.trace_dir is not None else None,
            "serve": self.serve.describe() if self.serve is not None
            else None,
            "surrogate": self.surrogate.describe()
            if self.surrogate is not None else None,
            "batch_kernel": bool(self.batch_kernel),
        }


def resolve_flow_engine(engine, retry_policy, config: EngineConfig | None,
                        caller: str):
    """Shared kwarg-migration shim for flows and sizers.

    Returns ``(engine, retry_policy, owned)``: with a ``config`` the
    engine is built fresh (``owned=True`` — the caller must close it);
    legacy ``engine=`` / ``retry_policy=`` kwargs pass through unchanged
    behind a ``DeprecationWarning``.
    """
    if config is not None:
        if engine is not None or retry_policy is not None:
            raise ValueError(
                f"{caller}: pass either config= or the legacy "
                f"engine=/retry_policy= kwargs, not both")
        from repro.engine.core import EvaluationEngine
        return EvaluationEngine.from_config(config), config.retry_policy, True
    if engine is not None or retry_policy is not None:
        warnings.warn(
            f"{caller}: the engine=/retry_policy= kwargs are deprecated; "
            f"pass config=EngineConfig(...) instead",
            DeprecationWarning, stacklevel=3)
    return engine, retry_policy, False
