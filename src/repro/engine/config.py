"""One typed configuration object for the evaluation engine.

The engine grew its collaborators one PR at a time — executor, cache,
telemetry, retry policy, fault injector, and now a tracer — and every
flow and sizer signature grew a matching kwarg.  :class:`EngineConfig`
consolidates them: build one config, hand it to
:meth:`repro.engine.EvaluationEngine.from_config`,
:func:`repro.flows.design_ota_cell`, :func:`repro.flows.assemble_chip`,
:class:`repro.synthesis.SimulationBasedSizer` or
:func:`repro.synthesis.pulse_detector.pulse_detector_flow`.  The legacy
scattered kwargs keep working but raise ``DeprecationWarning``.

``describe()`` renders the config as a JSON-safe dict, which is what the
run manifest records — a manifest always says exactly how its run was
configured.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import EvalCache
from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.engine.faults import FaultInjector, RetryPolicy
from repro.engine.telemetry import Telemetry
from repro.engine.trace import Tracer


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and batching knobs for the serving layer.

    Lives here (pure data, no serve imports) so an
    :class:`EngineConfig` can carry the full service shape and a run
    manifest can record it; :class:`repro.serve.Broker` consumes it.

    Parameters
    ----------
    max_batch / max_wait_ms:
        Micro-batcher shape: coalesce up to ``max_batch`` compatible
        requests, waiting at most ``max_wait_ms`` for stragglers after
        the first request of a batch is dequeued.  ``max_wait_ms=0``
        dispatches whatever is already queued without waiting.
    max_queue_depth:
        Bound on each priority class's queue.  A submit beyond it raises
        :class:`repro.serve.RejectedError` — explicit backpressure,
        never a silent drop.
    rate / burst:
        Per-client token-bucket admission: sustained ``rate`` requests/s
        with ``burst`` tokens of headroom.  ``rate=None`` disables
        rate limiting.
    default_deadline_s:
        Deadline applied to requests that do not carry their own;
        ``None`` means no deadline.
    interactive_burst:
        Fairness knob: after this many consecutive ``interactive``
        batches with ``batch``-class work waiting, one ``batch`` batch
        is served — strict-priority latency for interactive traffic
        without starving bulk clients.
    http_max_wait_s:
        Server-side ceiling on how long one HTTP ``/evaluate`` or
        ``/synthesize`` handler blocks when the request carries neither
        a ``timeout_s`` nor any deadline — without it a few such
        requests would pin ``ThreadingHTTPServer`` threads (and their
        connections) forever.  Hitting the ceiling answers 504 with
        ``outcome="pending"``; the request itself stays in flight.
        ``None`` disables the ceiling.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    rate: float | None = None
    burst: int = 32
    default_deadline_s: float | None = None
    interactive_burst: int = 4
    http_max_wait_s: float | None = 300.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.interactive_burst < 1:
            raise ValueError("interactive_burst must be >= 1")
        if self.http_max_wait_s is not None and self.http_max_wait_s <= 0:
            raise ValueError("http_max_wait_s must be positive (or None)")

    def describe(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_queue_depth": self.max_queue_depth,
            "rate": self.rate,
            "burst": self.burst,
            "default_deadline_s": self.default_deadline_s,
            "interactive_burst": self.interactive_burst,
            "http_max_wait_s": self.http_max_wait_s,
        }


@dataclass
class EngineConfig:
    """Everything an :class:`~repro.engine.core.EvaluationEngine` needs.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"parallel"``, ``"thread"``, or an
        explicit :class:`Executor` instance.  ``workers`` applies to the
        ``"parallel"`` and ``"thread"`` shorthands; ``chunksize`` to
        ``"parallel"`` only.
    cache:
        ``True`` builds a fresh :class:`EvalCache` (``cache_entries``,
        ``disk_cache_dir``); an instance is used as-is; ``False`` runs
        uncached.
    retry_policy / fault_injector / telemetry:
        Installed on the engine exactly as the legacy kwargs were.
    trace:
        ``True`` builds a :class:`~repro.engine.trace.Tracer`; an explicit
        ``tracer`` instance wins.  ``trace_dir`` implies ``trace`` and
        additionally makes traced flows write ``manifest.json`` +
        ``trace.jsonl`` there at the end of the run.
    """

    executor: Executor | str = "serial"
    workers: int | None = None
    chunksize: int | None = None
    cache: EvalCache | bool = False
    cache_entries: int = 65536
    disk_cache_dir: str | Path | None = None
    telemetry: Telemetry | None = None
    retry_policy: RetryPolicy | None = None
    fault_injector: FaultInjector | None = None
    trace: bool = False
    tracer: Tracer | None = field(default=None, repr=False)
    trace_dir: str | Path | None = None
    serve: ServeConfig | None = None

    # -- part builders -------------------------------------------------
    def build_executor(self) -> Executor:
        if isinstance(self.executor, Executor):
            return self.executor
        if self.executor == "serial":
            return SerialExecutor()
        if self.executor == "parallel":
            return ParallelExecutor(workers=self.workers,
                                    chunksize=self.chunksize)
        if self.executor == "thread":
            return ThreadExecutor(workers=self.workers)
        raise ValueError(
            f"executor must be 'serial', 'parallel', 'thread' or an "
            f"Executor instance, got {self.executor!r}")

    def build_cache(self) -> EvalCache | None:
        if isinstance(self.cache, EvalCache):
            return self.cache
        if self.cache:
            return EvalCache(max_entries=self.cache_entries,
                             disk_dir=self.disk_cache_dir)
        return None

    def build_tracer(self, telemetry: Telemetry | None = None) -> Tracer | None:
        if self.tracer is not None:
            return self.tracer
        if self.trace or self.trace_dir is not None:
            return Tracer(telemetry)
        return None

    # -- manifest rendering --------------------------------------------
    def describe(self) -> dict:
        """JSON-safe summary of this config, recorded in run manifests."""
        executor = self.executor if isinstance(self.executor, str) \
            else type(self.executor).__name__
        policy = self.retry_policy
        injector = self.fault_injector
        return {
            "executor": executor,
            "workers": self.workers,
            "chunksize": self.chunksize,
            "cache": bool(self.cache),
            "cache_entries": self.cache_entries
            if self.cache is not False else None,
            "disk_cache_dir": str(self.disk_cache_dir)
            if self.disk_cache_dir is not None else None,
            "retry_policy": None if policy is None else {
                "max_attempts": policy.max_attempts,
                "backoff_s": policy.backoff_s,
                "backoff_factor": policy.backoff_factor,
                "timeout_s": policy.timeout_s,
                "jitter": policy.jitter,
                "jitter_seed": policy.jitter_seed,
            },
            "fault_injector": None if injector is None else {
                "rate": injector.rate,
                "seed": injector.seed,
                "kinds": list(injector.kinds),
            },
            "trace": bool(self.trace or self.tracer is not None
                          or self.trace_dir is not None),
            "trace_dir": str(self.trace_dir)
            if self.trace_dir is not None else None,
            "serve": self.serve.describe() if self.serve is not None
            else None,
        }


def resolve_flow_engine(engine, retry_policy, config: EngineConfig | None,
                        caller: str):
    """Shared kwarg-migration shim for flows and sizers.

    Returns ``(engine, retry_policy, owned)``: with a ``config`` the
    engine is built fresh (``owned=True`` — the caller must close it);
    legacy ``engine=`` / ``retry_policy=`` kwargs pass through unchanged
    behind a ``DeprecationWarning``.
    """
    if config is not None:
        if engine is not None or retry_policy is not None:
            raise ValueError(
                f"{caller}: pass either config= or the legacy "
                f"engine=/retry_policy= kwargs, not both")
        from repro.engine.core import EvaluationEngine
        return EvaluationEngine.from_config(config), config.retry_policy, True
    if engine is not None or retry_policy is not None:
        warnings.warn(
            f"{caller}: the engine=/retry_policy= kwargs are deprecated; "
            f"pass config=EngineConfig(...) instead",
            DeprecationWarning, stacklevel=3)
    return engine, retry_policy, False
