"""Pluggable evaluation executors: serial and process-parallel.

The surveyed frontends all reduce to "evaluate many candidate circuits";
the executor abstracts *where* those evaluations run.  ``SerialExecutor``
runs them in-process (the seed behaviour), ``ParallelExecutor`` fans a
batch out over a ``concurrent.futures.ProcessPoolExecutor`` with chunking.
Both guarantee the same contract:

* results come back in the order of the input points, and
* the evaluation function is treated as pure, so serial and parallel runs
  of the same seeded loop produce identical results.

Both executors also carry the resilience layer (:mod:`repro.engine.faults`):
install a :class:`~repro.engine.faults.RetryPolicy` and failed evaluations
are retried with backoff, hung jobs are timed out, and whatever still
fails after its attempt budget comes back as a structured
:class:`~repro.engine.faults.EvalFailure` in result position — never a
silently swallowed exception, never a poisoned batch.  An installed
:class:`~repro.engine.faults.FaultInjector` fires deterministic faults in
front of the evaluation function, identically under either executor.

``ParallelExecutor`` degrades gracefully: if the evaluation function (or a
point) cannot be pickled, or the worker pool breaks, the batch falls back
to in-process execution and the event is counted in :meth:`describe` —
correctness never depends on the pool.  Under a retry policy, a crashed
or hung worker additionally condemns its pool: the pool is torn down, the
unfinished jobs are requeued on a fresh pool in the next attempt round,
and the restart is counted.
"""

from __future__ import annotations

import abc
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from repro.engine.faults import (
    EvalFailure,
    EvalTimeoutError,
    FaultInjector,
    RetryPolicy,
    WorkerCrashError,
    point_token,
)

Point = TypeVar("Point")
Result = TypeVar("Result")

_OK = "ok"
_ERR = "err"


@dataclass(frozen=True)
class BatchStats:
    """What one ``map_evaluate`` batch cost, shipped back by the executor.

    ``worker_s`` is the *worker-side* evaluation time summed over points
    (measured inside the worker, next to the evaluation, so IPC and pool
    scheduling are excluded); ``wall_s`` is the parent-side dispatch wall
    time.  Their ratio is the executor's effective parallel speedup.
    """

    points: int = 0
    worker_s: float = 0.0
    wall_s: float = 0.0


@dataclass(frozen=True)
class _Timed:
    """Evaluation wrapper returning ``(value, worker_seconds)``.

    The no-policy twin of :class:`_Guarded`: exceptions propagate
    unchanged, but every result carries its worker-side evaluation time
    so the engine can attribute simulator cost per batch even when no
    resilience layer is installed.  Picklable whenever ``fn`` is.
    """

    fn: Callable[[Any], Any]

    def __call__(self, point: Any) -> tuple:
        t0 = time.perf_counter()
        value = self.fn(point)
        return (value, time.perf_counter() - t0)


@dataclass(frozen=True)
class _Guarded:
    """Evaluation wrapper that converts exceptions into tagged tuples.

    Raising inside ``pool.map`` aborts the whole batch, so per-point
    errors must travel back as *values*.  The wrapper returns either
    ``("ok", result, dt)`` or ``("err", type_name, message, retryable,
    dt)`` — strings and floats only, so the reply pickles no matter what
    the original exception carried.  Classification happens here (the
    policy rides along, pickled by reference) so serial and parallel
    paths produce byte-identical failure records.

    ``KeyboardInterrupt``/``SystemExit`` are deliberately not caught.
    """

    fn: Callable[[Any], Any]
    policy: RetryPolicy

    def __call__(self, point: Any) -> tuple:
        t0 = time.perf_counter()
        try:
            value = self.fn(point)
        except Exception as exc:
            return (_ERR, type(exc).__name__, str(exc),
                    self.policy.is_retryable(exc),
                    time.perf_counter() - t0)
        return (_OK, value, time.perf_counter() - t0)


def _timeout_entry(policy: RetryPolicy) -> tuple:
    timeout_exc = EvalTimeoutError("")
    return (_ERR, "EvalTimeoutError",
            f"evaluation exceeded timeout_s={policy.timeout_s}",
            policy.is_retryable(timeout_exc), float(policy.timeout_s))


def _crash_entry(policy: RetryPolicy, detail: str) -> tuple:
    return (_ERR, "WorkerCrashError", detail,
            policy.is_retryable(WorkerCrashError(detail)), 0.0)


class Executor(abc.ABC):
    """Evaluates a pure function over a batch of points, order preserved.

    ``retry_policy`` / ``fault_injector`` / ``token_fn`` form the
    resilience layer; all default to off, in which case ``map_evaluate``
    behaves exactly as the raw executor (exceptions propagate).  They are
    plain attributes so an :class:`~repro.engine.core.EvaluationEngine`
    (or a test) can install them on an existing executor.
    """

    def __init__(self, retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 token_fn: Callable[[Any], str] | None = None):
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.token_fn = token_fn
        self.retries = 0
        self.failures = 0
        self.worker_s = 0.0
        self.last_batch = BatchStats()

    # -- subclass primitives ------------------------------------------
    @abc.abstractmethod
    def _map_raw(self, fn: Callable[[Point], Result],
                 points: list) -> list:
        """Plain ``[fn(p) for p in points]`` semantics; may raise."""

    @abc.abstractmethod
    def _map_guarded(self, guarded: _Guarded, batch: list,
                     policy: RetryPolicy) -> list[tuple]:
        """Run a guarded batch, returning tagged tuples; must not raise."""

    # -- public API ----------------------------------------------------
    def map_evaluate(self, fn: Callable[[Point], Result],
                     points: Sequence[Point]) -> list:
        """Return ``[fn(p) for p in points]``, possibly computed elsewhere.

        With a retry policy or fault injector installed, points whose
        evaluation ultimately fails yield :class:`EvalFailure` records in
        their result slots instead of raising.
        """
        points = list(points)
        if not points:
            self.last_batch = BatchStats()
            return []
        t0 = time.perf_counter()
        if self.retry_policy is None and self.fault_injector is None:
            outs = self._map_raw(_Timed(fn), points)
            values = [value for value, _dt in outs]
            worker_s = sum(dt for _value, dt in outs)
        else:
            values, worker_s = self._map_resilient(fn, points)
        self.last_batch = BatchStats(len(points), worker_s,
                                     time.perf_counter() - t0)
        self.worker_s += worker_s
        return values

    def describe(self) -> dict:
        return {"kind": type(self).__name__, "retries": self.retries,
                "failures": self.failures, "worker_s": self.worker_s}

    def close(self) -> None:
        """Release any held resources; the executor stays usable."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the retry loop (shared by both executors) --------------------
    def _map_resilient(self, fn: Callable, points: list) -> tuple[list, float]:
        """Resilient batch evaluation; returns (results, worker seconds)."""
        policy = self.retry_policy or RetryPolicy(max_attempts=1)
        results: list[Any] = [None] * len(points)
        elapsed = [0.0] * len(points)
        pending = list(range(len(points)))
        for attempt in range(1, policy.max_attempts + 1):
            if not pending:
                break
            if attempt > 1:
                # Jitter the backoff on the first still-pending point's
                # token: concurrent retriers working different points
                # sleep different amounts (no thundering herd), while the
                # schedule stays a pure function of (policy seed, points).
                delay = policy.delay(attempt - 1,
                                     token=self._token(points[pending[0]]))
                if delay > 0:
                    time.sleep(delay)
            call = fn
            if self.fault_injector is not None:
                call = self.fault_injector.wrap(fn, self.token_fn,
                                                attempt=attempt)
            guarded = _Guarded(call, policy)
            batch = [points[i] for i in pending]
            outs = self._map_guarded(guarded, batch, policy)
            still_pending: list[int] = []
            for i, out in zip(pending, outs):
                if out[0] == _OK:
                    results[i] = out[1]
                    elapsed[i] += out[2]
                    continue
                _, type_name, message, retryable, dt = out
                elapsed[i] += dt
                if retryable and attempt < policy.max_attempts:
                    still_pending.append(i)
                    continue
                self.failures += 1
                results[i] = EvalFailure(
                    exception_type=type_name, message=message,
                    attempts=attempt, token=self._token(points[i]),
                    retryable=retryable, elapsed_s=elapsed[i])
            self.retries += len(still_pending)
            pending = still_pending
        return results, sum(elapsed)

    def _token(self, point: Any) -> str:
        return self.token_fn(point) if self.token_fn is not None \
            else point_token(point)


class SerialExecutor(Executor):
    """In-process evaluation — the reference semantics.

    With a ``timeout_s`` policy each guarded call runs in a throwaway
    worker thread; a call over budget is recorded as an
    :class:`EvalTimeoutError` and abandoned (Python cannot kill a thread,
    so a truly unbounded evaluation will still hold its thread — the
    process-parallel executor is the right tool for hostile workloads).
    """

    def _map_raw(self, fn: Callable, points: list) -> list:
        return [fn(p) for p in points]

    def _map_guarded(self, guarded: _Guarded, batch: list,
                     policy: RetryPolicy) -> list[tuple]:
        if policy.timeout_s is None:
            return [guarded(p) for p in batch]
        outs: list[tuple] = []
        for point in batch:
            pool = ThreadPoolExecutor(max_workers=1)
            future = pool.submit(guarded, point)
            try:
                outs.append(future.result(timeout=policy.timeout_s))
            except FutureTimeoutError:
                outs.append(_timeout_entry(policy))
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        return outs


class ThreadExecutor(Executor):
    """Thread-pool evaluation for blocking or I/O-bound workloads.

    In-process circuit evaluation is numpy/CPU-bound, where the GIL makes
    threads pointless — that is :class:`ParallelExecutor`'s job.  The
    serving layer's workloads are different: requests spend much of their
    time *waiting* (external simulator processes, storage, downstream
    services), and overlapping those waits is exactly what threads do
    well.  Threads share memory, so there is no pickling constraint and
    no pool-spawn cost — closures, circuits and caches all work directly.

    With a ``timeout_s`` policy each call gets its own future and a call
    over budget is recorded as an :class:`EvalTimeoutError`; as with
    :class:`SerialExecutor`, Python cannot kill a thread, so a truly
    unbounded evaluation still holds its thread until it returns.
    """

    def __init__(self, workers: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 token_fn: Callable[[Any], str] | None = None):
        super().__init__(retry_policy, fault_injector, token_fn)
        self.workers = max(1, workers if workers is not None
                           else min(32, 4 * (os.cpu_count() or 1)))
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _map_raw(self, fn: Callable, points: list) -> list:
        if len(points) == 1:
            return [fn(p) for p in points]
        return list(self._ensure_pool().map(fn, points))

    def _map_guarded(self, guarded: _Guarded, batch: list,
                     policy: RetryPolicy) -> list[tuple]:
        if policy.timeout_s is None:
            return list(self._ensure_pool().map(guarded, batch))
        pool = self._ensure_pool()
        futures = [pool.submit(guarded, p) for p in batch]
        outs: list[tuple] = []
        for future in futures:
            try:
                outs.append(future.result(timeout=policy.timeout_s))
            except FutureTimeoutError:
                outs.append(_timeout_entry(policy))
        return outs

    def describe(self) -> dict:
        out = super().describe()
        out["workers"] = self.workers
        return out


class ParallelExecutor(Executor):
    """Process-pool evaluation with chunking and deterministic ordering.

    Parameters
    ----------
    workers:
        Pool size; defaults to the CPU count.
    chunksize:
        Points handed to a worker per task.  ``None`` picks
        ``ceil(len(points) / (4 * workers))`` per batch, which amortizes
        IPC for cheap evaluations without starving the pool on small
        batches.
    retry_policy / fault_injector / token_fn:
        The resilience layer (see :class:`Executor`).  A per-job
        ``timeout_s`` switches the batch from chunked ``pool.map`` to
        one future per point so each job can be timed out individually;
        a timed-out or crashed worker condemns the whole pool, which is
        torn down and rebuilt before the requeued jobs run again.
    """

    def __init__(self, workers: int | None = None,
                 chunksize: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector: FaultInjector | None = None,
                 token_fn: Callable[[Any], str] | None = None):
        super().__init__(retry_policy, fault_injector, token_fn)
        self.workers = max(1, workers if workers is not None
                           else (os.cpu_count() or 1))
        self.chunksize = chunksize
        self.serial_fallbacks = 0
        self.pool_restarts = 0
        self._pool: ProcessPoolExecutor | None = None

    # -- pool management ----------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _condemn_pool(self) -> None:
        """Tear down a pool believed to hold crashed or hung workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.pool_restarts += 1

    # -- evaluation ----------------------------------------------------
    def _batch_chunksize(self, n_points: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        return max(1, -(-n_points // (4 * self.workers)))

    @staticmethod
    def _picklable(obj: object) -> bool:
        try:
            pickle.dumps(obj)
            return True
        except (pickle.PicklingError, TypeError, AttributeError):
            # Only pickling-shaped errors mean "keep it in-process";
            # anything else is a real bug and must propagate.
            return False

    def _map_raw(self, fn: Callable, points: list) -> list:
        if len(points) == 1 or not self._picklable(fn):
            # One point (or a closure we cannot ship): IPC buys nothing.
            self.serial_fallbacks += 1
            return [fn(p) for p in points]
        try:
            pool = self._ensure_pool()
            # Pool.map preserves input order regardless of completion order.
            return list(pool.map(fn, points,
                                 chunksize=self._batch_chunksize(len(points))))
        except (BrokenProcessPool, pickle.PicklingError, AttributeError):
            self.close()
            self.serial_fallbacks += 1
            return [fn(p) for p in points]

    def _map_guarded(self, guarded: _Guarded, batch: list,
                     policy: RetryPolicy) -> list[tuple]:
        if not self._picklable(guarded):
            # In-process is the only option left; a timeout_s policy
            # cannot be honoured here (nothing to tear down).
            self.serial_fallbacks += 1
            return [guarded(p) for p in batch]
        if policy.timeout_s is None:
            if len(batch) == 1:
                # One point and no timeout to enforce: IPC buys nothing.
                self.serial_fallbacks += 1
                return [guarded(p) for p in batch]
            try:
                pool = self._ensure_pool()
                return list(pool.map(
                    guarded, batch,
                    chunksize=self._batch_chunksize(len(batch))))
            except BrokenProcessPool:
                # A worker died mid-batch; per-point attribution is lost,
                # so the whole round is requeued on a fresh pool.
                self._condemn_pool()
                return [_crash_entry(policy, "worker pool broke mid-batch")
                        for _ in batch]
            except pickle.PicklingError:
                self.close()
                self.serial_fallbacks += 1
                return [guarded(p) for p in batch]
        # Per-job timeout: one future per point so each can be timed out.
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(guarded, p) for p in batch]
        except BrokenProcessPool:
            self._condemn_pool()
            return [_crash_entry(policy, "worker pool broke on submit")
                    for _ in batch]
        outs: list[tuple] = []
        condemned = False
        for future in futures:
            try:
                outs.append(future.result(timeout=policy.timeout_s))
            except FutureTimeoutError:
                outs.append(_timeout_entry(policy))
                condemned = True  # the worker is presumed hung
            except BrokenProcessPool:
                outs.append(_crash_entry(policy, "worker process died"))
                condemned = True
            except Exception as exc:
                # Transport-level failure (e.g. unpicklable result):
                # surface as a fatal EvalFailure, never a lost batch.
                outs.append((_ERR, type(exc).__name__, str(exc), False, 0.0))
        if condemned:
            self._condemn_pool()
        return outs

    def describe(self) -> dict:
        out = super().describe()
        out.update({"workers": self.workers, "chunksize": self.chunksize,
                    "serial_fallbacks": self.serial_fallbacks,
                    "pool_restarts": self.pool_restarts})
        return out
