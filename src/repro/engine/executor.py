"""Pluggable evaluation executors: serial and process-parallel.

The surveyed frontends all reduce to "evaluate many candidate circuits";
the executor abstracts *where* those evaluations run.  ``SerialExecutor``
runs them in-process (the seed behaviour), ``ParallelExecutor`` fans a
batch out over a ``concurrent.futures.ProcessPoolExecutor`` with chunking.
Both guarantee the same contract:

* results come back in the order of the input points, and
* the evaluation function is treated as pure, so serial and parallel runs
  of the same seeded loop produce identical results.

``ParallelExecutor`` degrades gracefully: if the evaluation function (or a
point) cannot be pickled, or the worker pool breaks, the batch falls back
to in-process execution and the event is counted in :meth:`describe` —
correctness never depends on the pool.
"""

from __future__ import annotations

import abc
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

Point = TypeVar("Point")
Result = TypeVar("Result")


class Executor(abc.ABC):
    """Evaluates a pure function over a batch of points, order preserved."""

    @abc.abstractmethod
    def map_evaluate(self, fn: Callable[[Point], Result],
                     points: Sequence[Point]) -> list[Result]:
        """Return ``[fn(p) for p in points]``, possibly computed elsewhere."""

    def describe(self) -> dict:
        return {"kind": type(self).__name__}

    def close(self) -> None:
        """Release any held resources; the executor stays usable."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process evaluation — the reference semantics."""

    def map_evaluate(self, fn: Callable[[Point], Result],
                     points: Sequence[Point]) -> list[Result]:
        return [fn(p) for p in points]


class ParallelExecutor(Executor):
    """Process-pool evaluation with chunking and deterministic ordering.

    Parameters
    ----------
    workers:
        Pool size; defaults to the CPU count.
    chunksize:
        Points handed to a worker per task.  ``None`` picks
        ``ceil(len(points) / (4 * workers))`` per batch, which amortizes
        IPC for cheap evaluations without starving the pool on small
        batches.
    """

    def __init__(self, workers: int | None = None,
                 chunksize: int | None = None):
        self.workers = max(1, workers if workers is not None
                           else (os.cpu_count() or 1))
        self.chunksize = chunksize
        self.serial_fallbacks = 0
        self._pool: ProcessPoolExecutor | None = None

    # -- pool management ----------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- evaluation ----------------------------------------------------
    def _batch_chunksize(self, n_points: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        return max(1, -(-n_points // (4 * self.workers)))

    @staticmethod
    def _picklable(obj: object) -> bool:
        try:
            pickle.dumps(obj)
            return True
        except Exception:
            return False

    def map_evaluate(self, fn: Callable[[Point], Result],
                     points: Sequence[Point]) -> list[Result]:
        points = list(points)
        if not points:
            return []
        if len(points) == 1 or not self._picklable(fn):
            # One point (or a closure we cannot ship): IPC buys nothing.
            self.serial_fallbacks += 1
            return [fn(p) for p in points]
        try:
            pool = self._ensure_pool()
            # Pool.map preserves input order regardless of completion order.
            return list(pool.map(fn, points,
                                 chunksize=self._batch_chunksize(len(points))))
        except (BrokenProcessPool, pickle.PicklingError, AttributeError):
            self.close()
            self.serial_fallbacks += 1
            return [fn(p) for p in points]

    def describe(self) -> dict:
        return {"kind": type(self).__name__, "workers": self.workers,
                "chunksize": self.chunksize,
                "serial_fallbacks": self.serial_fallbacks}
