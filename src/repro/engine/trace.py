"""Hierarchical tracing: spans, a structured event log, and run manifests.

The paper's core quantitative claims are *cost* claims — 4x-10x CPU
overhead for manufacturability-aware synthesis (§2.2), exponential vs.
O(n) stack extraction (§3.1) — and the ROADMAP's "as fast as the hardware
allows" goal needs every perf PR to prove itself.  Both require the same
primitive: attributing wall time and simulator calls to a synthesis
stage.  This module is that primitive.

Three layers, cheapest first:

* **Spans** — ``tracer.span("size")`` context managers with monotonic
  durations and parent/child nesting.  Span *paths* follow the flow
  hierarchy (``cell_flow/iteration_1/size``).  On exit a span captures
  the delta of the engine's :class:`~repro.engine.telemetry.Telemetry`
  counters, so every span knows exactly how many evaluations, cache hits,
  simulator calls and failures happened inside it.
* **Events** — flat, structured records (``batch``, ``failure``,
  ``retry``, ``anneal_temperature``, ...) appended per occurrence and
  dumped as JSONL.  Events carry the current span path, a sequence
  number, and a relative timestamp.
* **Manifest** — one JSON document per flow run: seed, engine config,
  the full versioned ``engine.report()`` (span tree included) and a
  rollup block (wall time, simulator calls, failures, cache hit rate).

Determinism contract: the *structure* of a trace — span names, nesting,
order, statuses, counters, and the structural fields of every event — is
a pure function of (seed, config).  Wall-clock fields (any key ending in
``_s``, plus the ``timers`` section) are volatile by convention;
:func:`strip_volatile` removes them, which is what the differential tests
compare and what :func:`manifest_digest` hashes.  A serial and a parallel
run of the same seeded flow therefore produce byte-identical structures.

The **active tracer** is module state: entering a span pushes its tracer,
and :func:`repro.analysis.api.run` — the chokepoint every DC/AC/transient/
noise analysis goes through — counts ``analysis.<kind>`` on whatever
tracer is active.  The engine *suspends* the active tracer around
executor dispatch (:func:`suspended`) so in-process (serial) evaluations
are not counted where pool workers could not count them: serial and
parallel runs attribute identically, with worker-side cost reported
through the executor's shipped-back timings instead.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.engine.schema import MANIFEST_SCHEMA_VERSION
from repro.engine.telemetry import Telemetry

# ----------------------------------------------------------------------
# Active-tracer stack
# ----------------------------------------------------------------------

# Entries are Tracer instances (pushed by Tracer.span) or None (pushed by
# suspended()); the top entry wins.  Module-level on purpose: the analysis
# layer must reach the tracer without threading it through every call.
_ACTIVE: list["Tracer | None"] = []


def current_tracer() -> "Tracer | None":
    """The innermost active tracer, or None (also None when suspended)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def suspended() -> Iterator[None]:
    """Mask the active tracer for the duration of the block.

    The engine wraps executor dispatch in this so that analysis-level
    counters fire identically under serial (in-process) and parallel
    (worker-process) executors — workers never see the parent's tracer,
    so the serial path must not count what they cannot.
    """
    _ACTIVE.append(None)
    try:
        yield
    finally:
        _ACTIVE.pop()


def span_if(tracer: "Tracer | None", name: str):
    """``tracer.span(name)`` or a no-op context when there is no tracer."""
    return tracer.span(name) if tracer is not None else nullcontext()


# ----------------------------------------------------------------------
# Volatile-field stripping (the determinism boundary)
# ----------------------------------------------------------------------

#: Dict keys that are wall-clock-dependent and excluded from structural
#: comparison: everything ending in ``_s`` plus these exact names.
VOLATILE_KEYS = frozenset({"timers", "t_rel"})


def _is_volatile(key: str) -> bool:
    return key in VOLATILE_KEYS or key.endswith("_s")


def strip_volatile(obj: Any) -> Any:
    """Recursively drop wall-clock fields, keeping structure and counts."""
    if isinstance(obj, dict):
        return {k: strip_volatile(v) for k, v in obj.items()
                if not _is_volatile(k)}
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

@dataclass
class Span:
    """One timed, counted region of a run.

    ``counters`` holds the *inclusive* telemetry counter deltas observed
    between span entry and exit (children's work is included in their
    parents — sum leaves, not the whole tree).  ``index`` is the global
    start order, which makes flattened span lists comparable across runs.
    """

    name: str
    path: str
    index: int
    status: str = "ok"
    duration_s: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def simulator_calls(self) -> int:
        """Simulator work attributed to this span (inclusive).

        Engine-routed evaluations (``engine.evaluations``, each one
        simulator run dispatched to an executor) plus direct parent-side
        analysis calls counted by :func:`repro.analysis.api.run`.
        """
        return (self.counters.get("engine.evaluations", 0)
                + sum(n for key, n in self.counters.items()
                      if key.startswith("analysis.")))

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "index": self.index,
            "status": self.status,
            "duration_s": self.duration_s,
            "counters": dict(sorted(self.counters.items())),
            "children": [c.as_dict() for c in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class Tracer:
    """Span tree + event log bound to one :class:`Telemetry` instance.

    Created standalone (it builds its own telemetry) or attached to an
    :class:`~repro.engine.core.EvaluationEngine`, which rebinds
    ``telemetry`` so span counter deltas observe the engine's counters.
    Events accumulate in memory (flows emit tens to hundreds, not
    millions) and are dumped with :meth:`write_events`; spans are
    rendered with :meth:`span_tree` / :meth:`structure`.
    """

    def __init__(self, telemetry: Telemetry | None = None):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.roots: list[Span] = []
        self.events: list[dict] = []
        self._stack: list[Span] = []
        self._seq = 0
        self._span_index = 0
        self._t0 = time.perf_counter()

    # -- counters ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Bump a telemetry counter (and thereby the enclosing spans)."""
        self.telemetry.count(name, n)

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, *,
             duration_s: float | None = None) -> Iterator[Span]:
        """Open a child span of the current span (or a new root span).

        Naming convention: lowercase, ``_``-separated component names;
        the hierarchy, not the name, encodes context (``size``, not
        ``cell_flow_size``).  Paths join names with ``/``.

        ``duration_s`` records a *pre-timed* span: the given duration is
        used instead of the measured wall time, on both the span and its
        ``span_end`` event.  Use it to attribute work that already
        happened elsewhere (e.g. the serving layer re-attributing one
        batch's wall time to the requests inside it) without the event
        log and the span tree disagreeing about the duration.
        """
        parent = self.current_span
        path = f"{parent.path}/{name}" if parent is not None else name
        sp = Span(name=name, path=path, index=self._span_index)
        self._span_index += 1
        (parent.children if parent is not None else self.roots).append(sp)
        before = dict(self.telemetry.counters)
        self._stack.append(sp)
        _ACTIVE.append(self)
        self.event("span_start", span=path)
        t0 = time.perf_counter()
        try:
            yield sp
        except BaseException:
            sp.status = "error"
            raise
        finally:
            sp.duration_s = duration_s if duration_s is not None \
                else time.perf_counter() - t0
            sp.counters = {
                k: v - before.get(k, 0)
                for k, v in self.telemetry.counters.items()
                if v != before.get(k, 0)
            }
            _ACTIVE.pop()
            self._stack.pop()
            self.event("span_end", span=path, status=sp.status,
                       duration_s=sp.duration_s,
                       counters=dict(sorted(sp.counters.items())))

    # -- events --------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> dict:
        """Append one structured event (JSONL record) to the log.

        ``seq`` and ``span`` are structural; ``t_rel`` is volatile.
        Callers put wall-clock payload fields under ``*_s`` names so
        :func:`strip_volatile` removes them uniformly.
        """
        record = {
            "seq": self._seq,
            "kind": kind,
            "span": self._stack[-1].path if self._stack else None,
            "t_rel": time.perf_counter() - self._t0,
            **fields,
        }
        self._seq += 1
        self.events.append(record)
        return record

    # -- rendering -----------------------------------------------------
    def span_tree(self) -> list[dict]:
        """The full span forest, durations included."""
        return [sp.as_dict() for sp in self.roots]

    def structure(self) -> list[dict]:
        """The span forest with volatile (wall-clock) fields stripped.

        This is the object the differential tests compare: identical for
        serial and parallel executors at the same seed and fault rate.
        """
        return strip_volatile(self.span_tree())

    def event_structure(self) -> list[dict]:
        """The event log with volatile fields stripped."""
        return strip_volatile(self.events)

    def write_events(self, path: str | Path) -> Path:
        """Dump the event log as JSONL (one sorted-key JSON object/line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            for record in self.events:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------

def build_manifest(flow: str, engine, seed: int | None = None,
                   config=None, status: str = "ok") -> dict:
    """Assemble the per-run manifest for a traced flow run.

    ``engine`` is an :class:`~repro.engine.core.EvaluationEngine` (its
    versioned ``report()`` — spans included — is embedded verbatim);
    ``config`` is an :class:`~repro.engine.config.EngineConfig` or
    anything with a JSON-safe ``describe()``.
    """
    report = engine.report()
    spans: list[Span] = engine.tracer.roots if engine.tracer else []
    all_spans = [s for root in spans for s in root.walk()]
    cache = report.get("cache")
    return {
        "kind": "repro.run_manifest",
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "run": {
            "flow": flow,
            "seed": seed,
            "status": status,
            "config": config.describe() if config is not None else None,
        },
        "report": report,
        "rollups": {
            "wall_s": sum(root.duration_s for root in spans),
            "simulator_calls": sum(root.simulator_calls() for root in spans),
            "span_count": len(all_spans),
            "failures": report["failures"]["total"],
            "retries": int(report["executor"].get("retries", 0)),
            "cache_hit_rate": (cache or {}).get("hit_rate")
            if cache is not None else None,
            "solver_factorizations": report["solver"]["factorizations"],
            "solver_solves": report["solver"]["solves"],
            "solver_hit_rate": report["solver"]["hit_rate"],
            "serve_requests": report["serve"]["requests"],
            "serve_rejected": report["serve"]["rejected"],
            "serve_expired": report["serve"]["expired"],
            "serve_batches": report["serve"]["batches"],
            "serve_mean_batch_size": report["serve"]["mean_batch_size"],
            "serve_shards": len(report["serve"]["shards"]),
            "surrogate_fits": report["surrogate"]["fits"],
            "surrogate_predictions": report["surrogate"]["predictions"],
            "surrogate_sims_avoided": report["surrogate"]["sims_avoided"],
            "surrogate_verify_misses": report["surrogate"]["verify_misses"],
            "surrogate_avoid_rate": report["surrogate"]["avoid_rate"],
            "kernel_batches": report["kernel"]["batches"],
            "kernel_batched_points": report["kernel"]["batched_points"],
            "kernel_scalar_points": report["kernel"]["scalar_points"],
            "kernel_mean_batch_points":
                report["kernel"]["mean_batch_points"],
            "topogen_generated": report["topogen"]["generated"],
            "topogen_valid": report["topogen"]["valid"],
            "topogen_survivors": report["topogen"]["survivors"],
            "topogen_sized": report["topogen"]["sized"],
            "topogen_prune_ratio": report["topogen"]["prune_ratio"],
            "macro_tiled": report["macro"]["tiled"],
            "macro_units": report["macro"]["units"],
            "macro_rails": report["macro"]["rails"],
            "macro_vias": report["macro"]["vias"],
            "macro_signoffs": report["macro"]["signoffs"],
            "macro_blockage_violations":
                report["macro"]["blockage_violations"],
        },
    }


def write_manifest(manifest: dict, path: str | Path) -> Path:
    """Write a manifest as stable JSON (sorted keys, indented)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(manifest, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path


def manifest_digest(manifest: dict) -> str:
    """SHA-256 over the manifest's structural (non-wall-clock) content.

    Byte-stable across reruns of the same seeded flow — the regression
    handle for "did anything about this run's *shape* change".
    """
    stable = json.dumps(strip_volatile(manifest), sort_keys=True)
    return hashlib.sha256(stable.encode()).hexdigest()


def finish_run(flow: str, engine, seed: int | None = None, config=None,
               status: str = "ok") -> dict | None:
    """Build the manifest for a finished flow run and persist the trace.

    Returns the manifest (or None when the engine has no tracer).  When
    ``config.trace_dir`` is set, writes ``<trace_dir>/manifest.json`` and
    ``<trace_dir>/trace.jsonl``.
    """
    tracer = getattr(engine, "tracer", None)
    if tracer is None:
        return None
    manifest = build_manifest(flow, engine, seed=seed, config=config,
                              status=status)
    trace_dir = getattr(config, "trace_dir", None) if config is not None \
        else None
    if trace_dir:
        trace_dir = Path(trace_dir)
        manifest["events_path"] = str(trace_dir / "trace.jsonl")
        write_manifest(manifest, trace_dir / "manifest.json")
        tracer.write_events(trace_dir / "trace.jsonl")
    return manifest
