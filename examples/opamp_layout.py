"""Fig. 2 reproduction: manual-style vs. automatic opamp cell layouts.

Generates six layouts of the *identical* CMOS opamp — four procedural
template layouts standing in for the paper's manual layouts, plus two
automatic KOAN/ANAGRAM layouts — and compares area, wirelength and
extracted parasitics.  All six are exported to one GDSII file.

Usage:  python examples/opamp_layout.py
"""

from repro.circuits.library import five_transistor_ota
from repro.layout import (
    STYLES,
    KoanPlacer,
    RoutingRequest,
    SENSITIVE,
    compact_placement,
    extract_constraints,
    extract_parasitics,
    generate_device,
    procedural_cell_layout,
    route_placement,
    routed_cell,
    save_gds,
)
from repro.opt.anneal import AnnealSchedule


def _route(placement, layouts, constraints):
    nets = {}
    for name, obj in placement.objects.items():
        lay = layouts[name]
        for port, net in lay.port_nets.items():
            if port in lay.cell.ports:
                x, y = obj.port_position(port)
                nets.setdefault(net, []).append(
                    (x, y, lay.cell.ports[port].layer))
    requests = [
        RoutingRequest(net, pins,
                       SENSITIVE if net in ("inp", "inn") else "neutral")
        for net, pins in nets.items() if len(pins) > 1
    ]
    return route_placement(placement, requests, constraints.net_pairs)


def main() -> None:
    circuit = five_transistor_ota()
    results = []
    cells = []

    # Four "manual" template layouts.
    for style in STYLES:
        template = procedural_cell_layout(circuit, style)
        routing, router = _route(template.placement, template.layouts,
                                 template.constraints)
        extraction = extract_parasitics(routing, router)
        cell = routed_cell(template.placement, routing,
                           name=f"manual_{style}")
        cells.append(cell)
        box = template.placement.bbox()
        results.append((f"manual/{style}", box.area / 1e6,
                        routing.total_length / 1e3,
                        extraction.total_wire_cap() * 1e15,
                        len(routing.failed)))

    # Two automatic KOAN/ANAGRAM layouts (different anneal seeds), placing
    # the same device set as the templates (transistors + load cap).
    constraints = extract_constraints(circuit)
    layouts = {}
    for dev in circuit.devices:
        try:
            layouts[dev.name] = generate_device(dev)
        except TypeError:
            continue
    for seed in (1, 2):
        placer = KoanPlacer(list(layouts.values()), constraints, seed=seed)
        placed = placer.run(AnnealSchedule(moves_per_temperature=200,
                                           cooling=0.92,
                                           max_evaluations=30000))
        compact_placement(placed.placement, constraints)
        routing, router = _route(placed.placement, layouts, constraints)
        extraction = extract_parasitics(routing, router)
        cell = routed_cell(placed.placement, routing,
                           name=f"auto_koan_s{seed}")
        cells.append(cell)
        box = placed.placement.bbox()
        results.append((f"automatic/koan seed {seed}", box.area / 1e6,
                        routing.total_length / 1e3,
                        extraction.total_wire_cap() * 1e15,
                        len(routing.failed)))

    print(f"{'layout':<26}{'area um^2':>12}{'wire um':>10}"
          f"{'wire cap fF':>13}{'failed':>8}")
    for name, area, wire, cap, failed in results:
        print(f"{name:<26}{area:>12.0f}{wire:>10.0f}{cap:>13.2f}"
              f"{failed:>8}")

    manual_best = min(r[1] for r in results[:4])
    auto_best = min(r[1] for r in results[4:])
    print(f"\nbest automatic vs best manual area: "
          f"{auto_best / manual_best:.2f}x "
          f"(Fig. 2's point: automatic is competitive)")

    save_gds(cells, "opamp_six_layouts.gds")
    print("wrote opamp_six_layouts.gds with all six cells")


if __name__ == "__main__":
    main()
