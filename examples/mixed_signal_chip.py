"""Full mixed-signal system assembly: the §3.2 backend in one run.

Takes a synthetic data-channel chip (DSP + clocking next to a sensitive
analog front-end — the same situation as the paper's Fig. 3 example),
then runs WRIGHT floorplanning, WREN global routing with SNR constraint
mapping, and RAIL power-grid synthesis.  The run is repeated with the
noise-aware features disabled to show what they buy.

Usage:  python examples/mixed_signal_chip.py
"""

from repro.flows import assemble_chip
from repro.msystem import demo_mixed_signal_system
from repro.msystem.powergrid import uniform_grid_result


def main() -> None:
    blocks, nets = demo_mixed_signal_system()
    print(f"system: {len(blocks)} blocks, {len(nets)} chip-level nets\n")

    print("=== noise-aware assembly (WRIGHT + WREN + RAIL) ===")
    plan = assemble_chip(blocks, nets, seed=1, noise_aware=True)
    print(plan.report())

    print("\n=== noise-blind assembly (same tools, noise terms off) ===")
    blind = assemble_chip(blocks, nets, seed=1, noise_aware=False)
    print(blind.report())

    print("\n=== what noise awareness bought ===")
    print(f"substrate noise figure: {plan.floorplan.noise:.2f} vs "
          f"{blind.floorplan.noise:.2f} "
          f"({blind.floorplan.noise / max(plan.floorplan.noise, 1e-9):.1f}x"
          " worse when blind)")
    print(f"sensitive-net exposure: "
          f"{plan.routing.total_exposure / 1e6:.2f} mm vs "
          f"{blind.routing.total_exposure / 1e6:.2f} mm")

    print("\n=== RAIL vs naive uniform power grid (Fig. 3 story) ===")
    naive = uniform_grid_result(plan.floorplan, width_nm=4_000)
    print(f"naive 4 um grid:  IR {naive.worst_ir_drop * 1e3:.0f} mV, "
          f"droop {naive.worst_droop * 1e3:.0f} mV, "
          f"feasible: {naive.feasible}")
    print(f"RAIL redesign:    IR {plan.power.worst_ir_drop * 1e3:.0f} mV, "
          f"droop {plan.power.worst_droop * 1e3:.0f} mV, "
          f"feasible: {plan.power.feasible}, "
          f"metal {plan.power.metal_area / 1e12:.2f} mm^2")


if __name__ == "__main__":
    main()
