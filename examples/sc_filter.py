"""Switched-capacitor filter silicon compiler ([30], [52]).

Synthesizes a Butterworth switched-capacitor lowpass from a frequency/
noise spec, quantizes the capacitor ratios onto a unit capacitor, and
generates matched common-centroid capacitor arrays — the procedural
generation pipeline the tutorial cites for regular analog structures.

Usage:  python examples/sc_filter.py
"""

from repro.layout.caparray import generate_cap_array
from repro.layout.gdslite import save_gds
from repro.synthesis.sc_filter import synthesize_sc_filter


def main() -> None:
    f_cutoff, order, f_clock = 10e3, 4, 1e6
    print(f"Synthesizing a {order}th-order Butterworth SC lowpass: "
          f"fc = {f_cutoff / 1e3:.0f} kHz, fclk = {f_clock / 1e6:.0f} MHz")
    design = synthesize_sc_filter(f_cutoff, order, f_clock,
                                  noise_budget_v=200e-6)

    print(f"\nunit capacitor: {design.budgets[0].unit_cap * 1e15:.0f} fF"
          f"   total: {design.total_capacitance * 1e12:.1f} pF "
          f"({design.total_units} units)")
    print(f"worst kT/C noise: {design.worst_noise_v() * 1e6:.0f} uVrms "
          f"(budget 200 uVrms)")
    print(f"capacitor-array area estimate: "
          f"{design.area_estimate() * 1e6:.3f} mm^2")

    print(f"\n{'section':<10}{'target f0/Q':>16}{'realized f0/Q':>18}"
          f"{'ratio err':>11}{'spread':>8}")
    for i, (section, budget) in enumerate(zip(design.sections,
                                              design.budgets)):
        f0, q = section.effective_f0_q()
        print(f"biquad {i:<3}"
              f"{section.spec.f0 / 1e3:>8.1f}k/{section.spec.q:<5.3f}"
              f"{f0 / 1e3:>10.1f}k/{q:<5.3f}"
              f"{budget.ratio_error:>10.2%}{budget.spread:>8.0f}")

    cells = []
    for i, budget in enumerate(design.budgets):
        array = generate_cap_array(budget.units, budget.unit_cap,
                                   name=f"biquad{i}_caps")
        cells.append(array.cell)
        worst = max(array.centroid_error.values())
        print(f"\nbiquad {i} capacitor array: {array.rows}x{array.cols} "
              f"units, worst centroid offset {worst:.2f} cell pitches")
        for name, err in sorted(array.centroid_error.items()):
            print(f"   {name:<8} {array.units_of(name):>4} units, "
                  f"centroid offset {err:.3f}")

    save_gds(cells, "sc_filter_caps.gds")
    print("\nwrote sc_filter_caps.gds")


if __name__ == "__main__":
    main()
