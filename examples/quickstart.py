"""Quickstart: size, analyze and lay out an analog cell in ~40 lines.

Runs the whole frontend+backend story on the 5-transistor OTA:
specification → design-plan sizing → simulation → symbolic analysis →
placement/routing → parasitic extraction → post-layout verification →
GDSII export.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import ac_analysis, bode_metrics, logspace_frequencies
from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.flows import design_ota_cell
from repro.layout.gdslite import save_gds
from repro.symbolic import SymbolicAnalyzer


def main() -> None:
    # 1. The specification.
    specs = SpecSet([
        Spec.at_least("gbw", 10e6, unit="Hz"),
        Spec.at_least("gain", 80.0, unit="V/V"),
        Spec.at_least("slew_rate", 5e6, unit="V/s"),
    ])
    print("Specs:")
    for s in specs:
        print(f"  {s.name} {s.kind.value} {s.value:g} {s.unit}")

    # 2. Run the closed-loop flow: plan sizing -> KOAN placement ->
    #    ANAGRAM routing -> extraction -> post-layout verification.
    design = design_ota_cell(specs, seed=1)
    print(f"\nFlow converged in {design.iterations} iteration(s); "
          f"layout area {design.area_um2:.0f} um^2")
    print("Post-layout performance:")
    for key, value in design.post_layout.items():
        print(f"  {key:>14}: {value:.4g}")

    # 3. Inspect the design symbolically (ISAAC-style).
    circuit = design.schematic.copy()
    circuit.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
    circuit.vsource("vin_", "inn", "0", dc=1.5)
    tf = SymbolicAnalyzer(circuit).transfer_function("out").simplified(0.1)
    print("\nSimplified symbolic transfer function (dominant terms):")
    print(tf.to_string())

    # 4. Sweep the AC response of the extracted (post-layout) netlist.
    extracted = design.extracted_circuit.copy()
    extracted.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
    extracted.vsource("vin_", "inn", "0", dc=1.5)
    result = ac_analysis(extracted, logspace_frequencies(10, 1e9, 6))
    metrics = bode_metrics(result, "out")
    print(f"\nExtracted netlist: gain {metrics.dc_gain_db:.1f} dB, "
          f"GBW {metrics.unity_gain_freq / 1e6:.2f} MHz, "
          f"PM {metrics.phase_margin_deg:.0f} deg")

    # 5. Export the layout.
    save_gds([design.layout_cell], "quickstart_ota.gds")
    print("\nWrote quickstart_ota.gds "
          f"({len(design.layout_cell.shapes)} rectangles)")


if __name__ == "__main__":
    main()
