"""High-level RF receiver front-end optimization (the [29] application).

Distributes gain / noise-figure / linearity specs over an LNA → mixer →
filter → VGA chain for minimum power, at two different signal-quality
targets, and prints the resulting block-level budget — the
"specification translation" step of the hierarchical methodology applied
one level above circuits.

Usage:  python examples/rf_receiver.py
"""

from repro.synthesis.rf_frontend import (
    optimize_receiver,
    receiver_performance,
)

BLOCK_PARAMS = ("gain", "nf", "iip3")


def show(result, label: str) -> None:
    perf = result.performance
    print(f"\n--- {label} ---")
    print(f"feasible: {result.feasible}   power: "
          f"{perf['power'] * 1e3:.1f} mW")
    print(f"cascade: gain {perf['gain_db']:.1f} dB, NF "
          f"{perf['nf_db']:.2f} dB, IIP3 {perf['iip3_dbm']:.1f} dBm, "
          f"SNDR {perf['sndr_db']:.1f} dB")
    print(f"{'block':<8}" + "".join(f"{p:>10}" for p in BLOCK_PARAMS))
    for block in ("lna", "mixer", "vga"):
        row = "".join(f"{result.sizes[f'{block}_{p}']:>10.1f}"
                      for p in BLOCK_PARAMS)
        print(f"{block:<8}{row}")


def main() -> None:
    relaxed = optimize_receiver(sndr_min_db=10.0, gain_min_db=65.0, seed=1)
    show(relaxed, "relaxed application (SNDR >= 10 dB)")

    demanding = optimize_receiver(sndr_min_db=16.0, gain_min_db=72.0,
                                  seed=1)
    show(demanding, "demanding application (SNDR >= 16 dB)")

    ratio = (demanding.performance["power"]
             / relaxed.performance["power"])
    print(f"\npower cost of the tighter signal-quality spec: "
          f"{ratio:.2f}x — the power/quality trade the high-level "
          "optimizer navigates")


if __name__ == "__main__":
    main()
