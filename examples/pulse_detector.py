"""Table 1 reproduction: pulse-detector frontend synthesis (AMGIE-style).

Synthesizes the charge-sensitive amplifier + 4-stage shaper against the
paper's specs, compares the result to the calibrated expert ("manual")
design, and verifies the winning design's peaking time and charge gain by
transient simulation of the built circuit.

Usage:  python examples/pulse_detector.py
"""

from repro.synthesis.pulse_detector import (
    MANUAL_DESIGN,
    PulseDetectorDesign,
    pulse_detector_performance,
    pulse_detector_specs,
    synthesize_pulse_detector,
    verified_peaking_time,
)

ROWS = [
    ("peaking time", "peaking_time", 1e6, "us", "< 1.5"),
    ("counting rate", "counting_rate", 1e-3, "kHz", "> 200"),
    ("noise (ENC)", "noise_enc", 1.0, "rms e-", "< 1000"),
    ("gain", "gain", 1.0, "V/fC", "= 20"),
    ("output range", "output_range", 1.0, "V", "> 1.0"),
    ("power", "power", 1e3, "mW", "minimal"),
    ("area", "area", 1e6, "mm^2", "minimal"),
]


def main() -> None:
    specs = pulse_detector_specs()
    manual = pulse_detector_performance(MANUAL_DESIGN.sizes())
    print("Synthesizing the pulse-detector frontend "
          "(CSA + CR-RC^4 shaper)...")
    result = synthesize_pulse_detector(seed=1)
    synth = result.performance

    print(f"\n{'performance':<16}{'specification':>15}"
          f"{'manual':>12}{'synthesis':>12}")
    for label, key, scale, unit, spec_text in ROWS:
        print(f"{label:<16}{spec_text + ' ' + unit:>15}"
              f"{manual[key] * scale:>12.3g}{synth[key] * scale:>12.3g}")
    print(f"\nall specs met by synthesis: "
          f"{specs.all_satisfied(synth)}")
    print(f"power reduction vs expert: "
          f"{manual['power'] / synth['power']:.1f}x "
          f"(paper reports ~5.7x: 40 mW -> 7 mW)")

    print("\nVerifying the synthesized design by transient simulation "
          "of the built circuit...")
    design = PulseDetectorDesign.from_sizes(
        {k: result.sizes[k] for k in MANUAL_DESIGN.sizes()})
    measured = verified_peaking_time(design)
    print(f"  model peaking time: {synth['peaking_time'] * 1e6:.2f} us, "
          f"simulated: {measured['peaking_time'] * 1e6:.2f} us")
    print(f"  model gain: {synth['gain']:.1f} V/fC, "
          f"simulated: {measured['gain']:.1f} V/fC")


if __name__ == "__main__":
    main()
